//! Binary support vector machine trained with sequential minimal
//! optimization (SMO).
//!
//! The random-subspace ensemble of the generic classification framework uses
//! a binary SVM with RBF kernel as its base classifier (paper §4.4). This is
//! a from-scratch implementation of Platt's simplified SMO with full kernel
//! caching for the training set.
//!
//! The number of support vectors of each trained base classifier matters
//! architecturally: it determines the operation count — and therefore the
//! energy — of the corresponding SVM functional cell in the sensor node
//! (paper §5.5: "some basic SVM classifiers have fewer supporting vectors due
//! to the good data separability of the dataset").

use crate::kernel::Kernel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training hyper-parameters for [`Svm::train`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SvmConfig {
    /// Kernel function.
    pub kernel: Kernel,
    /// Box constraint C (> 0): soft-margin penalty.
    pub c: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Number of full passes without any update before convergence is
    /// declared.
    pub max_passes: u32,
    /// Hard iteration bound (protects against pathological inputs).
    pub max_iters: u32,
    /// Seed for the randomized second-multiplier choice.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            kernel: Kernel::default(),
            c: 1.0,
            tol: 1e-3,
            max_passes: 5,
            max_iters: 200,
            seed: 0x5eed,
        }
    }
}

/// Error returned by [`Svm::train`] on invalid training input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrainSvmError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// Sample vectors have inconsistent dimensionality.
    DimensionMismatch,
    /// A label other than ±1 was supplied.
    InvalidLabel,
    /// Training data contained only one class.
    SingleClass,
}

impl std::fmt::Display for TrainSvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            TrainSvmError::EmptyTrainingSet => "training set is empty",
            TrainSvmError::DimensionMismatch => "samples have inconsistent dimensions",
            TrainSvmError::InvalidLabel => "labels must be +1 or -1",
            TrainSvmError::SingleClass => "training data contains a single class",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for TrainSvmError {}

/// A trained binary SVM.
///
/// # Examples
///
/// ```
/// use xpro_ml::svm::{Svm, SvmConfig};
/// use xpro_ml::kernel::Kernel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let xs = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![1.0, 1.0], vec![0.9, 1.0]];
/// let ys = vec![-1.0, -1.0, 1.0, 1.0];
/// let cfg = SvmConfig { kernel: Kernel::Linear, ..SvmConfig::default() };
/// let svm = Svm::train(&xs, &ys, &cfg)?;
/// assert_eq!(svm.predict(&[0.05, 0.0]), -1.0);
/// assert_eq!(svm.predict(&[0.95, 1.0]), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Svm {
    kernel: Kernel,
    support_vectors: Vec<Vec<f64>>,
    /// αᵢ·yᵢ for each support vector.
    coefficients: Vec<f64>,
    bias: f64,
    dim: usize,
}

impl Svm {
    /// Trains a binary SVM with SMO.
    ///
    /// Labels must be exactly `+1.0` or `-1.0`.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainSvmError`] if the input is empty, ragged, uses labels
    /// other than ±1, or contains a single class.
    pub fn train(xs: &[Vec<f64>], ys: &[f64], cfg: &SvmConfig) -> Result<Svm, TrainSvmError> {
        if xs.is_empty() || ys.is_empty() || xs.len() != ys.len() {
            return Err(TrainSvmError::EmptyTrainingSet);
        }
        let dim = xs[0].len();
        if xs.iter().any(|x| x.len() != dim) || dim == 0 {
            return Err(TrainSvmError::DimensionMismatch);
        }
        if ys.iter().any(|&y| y != 1.0 && y != -1.0) {
            return Err(TrainSvmError::InvalidLabel);
        }
        if ys.iter().all(|&y| y == 1.0) || ys.iter().all(|&y| y == -1.0) {
            return Err(TrainSvmError::SingleClass);
        }

        let n = xs.len();
        // Cache the full kernel matrix: training sets here are at most ~1k
        // samples, so the O(n²) memory is the right trade for SMO speed.
        let mut k = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let v = cfg.kernel.eval(&xs[i], &xs[j]);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }
        let kij = |i: usize, j: usize| k[i * n + j];

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut passes = 0u32;
        let mut iters = 0u32;

        // Decision value on training sample i under current alpha/b.
        let f = |alpha: &[f64], b: f64, i: usize| -> f64 {
            let mut acc = b;
            for j in 0..n {
                if alpha[j] != 0.0 {
                    acc += alpha[j] * ys[j] * kij(j, i);
                }
            }
            acc
        };

        while passes < cfg.max_passes && iters < cfg.max_iters {
            iters += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let ei = f(&alpha, b, i) - ys[i];
                let violates = (ys[i] * ei < -cfg.tol && alpha[i] < cfg.c)
                    || (ys[i] * ei > cfg.tol && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                // Pick a random j != i.
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&alpha, b, j) - ys[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                // Compute clip bounds.
                let (lo, hi) = if ys[i] != ys[j] {
                    (
                        (alpha[j] - alpha[i]).max(0.0),
                        (cfg.c + alpha[j] - alpha[i]).min(cfg.c),
                    )
                } else {
                    (
                        (alpha[i] + alpha[j] - cfg.c).max(0.0),
                        (alpha[i] + alpha[j]).min(cfg.c),
                    )
                };
                if lo >= hi {
                    continue;
                }
                let eta = 2.0 * kij(i, j) - kij(i, i) - kij(j, j);
                if eta >= 0.0 {
                    continue;
                }
                let mut aj_new = aj_old - ys[j] * (ei - ej) / eta;
                aj_new = aj_new.clamp(lo, hi);
                if (aj_new - aj_old).abs() < 1e-7 {
                    continue;
                }
                let ai_new = ai_old + ys[i] * ys[j] * (aj_old - aj_new);
                alpha[i] = ai_new;
                alpha[j] = aj_new;
                // Update bias.
                let b1 = b
                    - ei
                    - ys[i] * (ai_new - ai_old) * kij(i, i)
                    - ys[j] * (aj_new - aj_old) * kij(i, j);
                let b2 = b
                    - ej
                    - ys[i] * (ai_new - ai_old) * kij(i, j)
                    - ys[j] * (aj_new - aj_old) * kij(j, j);
                b = if 0.0 < ai_new && ai_new < cfg.c {
                    b1
                } else if 0.0 < aj_new && aj_new < cfg.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Collect support vectors.
        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-8 {
                support_vectors.push(xs[i].clone());
                coefficients.push(alpha[i] * ys[i]);
            }
        }
        Ok(Svm {
            kernel: cfg.kernel,
            support_vectors,
            coefficients,
            bias: b,
            dim,
        })
    }

    /// Signed decision value `Σ αᵢyᵢ·K(svᵢ, x) + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn decision(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        let mut acc = self.bias;
        for (sv, &coef) in self.support_vectors.iter().zip(&self.coefficients) {
            acc += coef * self.kernel.eval(sv, x);
        }
        acc
    }

    /// Predicted label: `+1.0` or `-1.0` (ties map to `+1.0`).
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Signed decision value computed entirely on the Q16.16 fixed-point
    /// datapath — how an in-sensor SVM functional cell evaluates (paper
    /// §4.4: 32-bit fixed point; §3.1.1: the S-ALU's exponent unit serves
    /// the RBF kernel).
    ///
    /// Support-vector coordinates, coefficients and the bias are quantized
    /// once per call; inputs are expected to already be normalized to
    /// `[0, 1]`, so no saturation occurs in practice.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn decision_q16(&self, x: &[xpro_signal::fixed::Q16]) -> xpro_signal::fixed::Q16 {
        use xpro_signal::fixed::Q16;
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        let mut acc = Q16::from_f64(self.bias);
        for (sv, &coef) in self.support_vectors.iter().zip(&self.coefficients) {
            let k = match self.kernel {
                Kernel::Linear => {
                    let mut dot = Q16::ZERO;
                    for (&s, &v) in sv.iter().zip(x) {
                        dot += Q16::from_f64(s) * v;
                    }
                    dot
                }
                Kernel::Rbf { gamma } => {
                    let mut dist2 = Q16::ZERO;
                    for (&s, &v) in sv.iter().zip(x) {
                        let d = Q16::from_f64(s) - v;
                        dist2 += d * d;
                    }
                    (-(Q16::from_f64(gamma) * dist2)).exp()
                }
                Kernel::Poly { degree, coef0 } => {
                    let mut dot = Q16::from_f64(coef0);
                    for (&s, &v) in sv.iter().zip(x) {
                        dot += Q16::from_f64(s) * v;
                    }
                    let mut out = Q16::ONE;
                    for _ in 0..degree {
                        out = out * dot;
                    }
                    out
                }
            };
            acc += Q16::from_f64(coef) * k;
        }
        acc
    }

    /// Signed decision value on the Q16.16 datapath with every multiply
    /// running on a truncated multiplier array (`bits` dropped
    /// partial-product columns) — the approximate SVM kernel behind the
    /// `mul_truncation_bits` knob.
    ///
    /// With `bits == 0` this is bit-identical to [`Svm::decision_q16`].
    /// Each truncated multiply deviates by at most `2^bits` ulps from the
    /// exact one, and the exponential unit is 1-Lipschitz on the RBF's
    /// non-positive arguments, so the score deviation is statically
    /// bounded by `sv · 2^bits · (1 + C + C·γ·dims)` ulps for coefficient
    /// bound `C` — the envelope the approximation analysis injects and the
    /// approx-soundness proptests check.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn decision_q16_trunc(
        &self,
        x: &[xpro_signal::fixed::Q16],
        bits: u32,
    ) -> xpro_signal::fixed::Q16 {
        use xpro_signal::fixed::Q16;
        if bits == 0 {
            return self.decision_q16(x);
        }
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        let mut acc = Q16::from_f64(self.bias);
        for (sv, &coef) in self.support_vectors.iter().zip(&self.coefficients) {
            let k = match self.kernel {
                Kernel::Linear => {
                    let mut dot = Q16::ZERO;
                    for (&s, &v) in sv.iter().zip(x) {
                        dot += Q16::from_f64(s).truncated_mul(v, bits);
                    }
                    dot
                }
                Kernel::Rbf { gamma } => {
                    let mut dist2 = Q16::ZERO;
                    for (&s, &v) in sv.iter().zip(x) {
                        let d = Q16::from_f64(s) - v;
                        dist2 += d.truncated_mul(d, bits);
                    }
                    (-(Q16::from_f64(gamma).truncated_mul(dist2, bits))).exp()
                }
                Kernel::Poly { degree, coef0 } => {
                    let mut dot = Q16::from_f64(coef0);
                    for (&s, &v) in sv.iter().zip(x) {
                        dot += Q16::from_f64(s).truncated_mul(v, bits);
                    }
                    let mut out = Q16::ONE;
                    for _ in 0..degree {
                        out = out.truncated_mul(dot, bits);
                    }
                    out
                }
            };
            acc += Q16::from_f64(coef).truncated_mul(k, bits);
        }
        acc
    }

    /// Predicted ±1 label from the fixed-point datapath (ties map to +1).
    pub fn predict_q16(&self, x: &[xpro_signal::fixed::Q16]) -> f64 {
        use xpro_signal::fixed::Q16;
        if self.decision_q16(x) >= Q16::ZERO {
            1.0
        } else {
            -1.0
        }
    }

    /// Number of support vectors — the main driver of the SVM functional
    /// cell's operation count in the sensor node.
    pub fn num_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Kernel used by this model.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;
    use rand::Rng;

    fn linearly_separable(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let cls: bool = rng.gen();
            let base = if cls { 1.0 } else { -1.0 };
            xs.push(vec![
                base + rng.gen_range(-0.3..0.3),
                base + rng.gen_range(-0.3..0.3),
            ]);
            ys.push(if cls { 1.0 } else { -1.0 });
        }
        (xs, ys)
    }

    #[test]
    fn separates_linear_data_with_linear_kernel() {
        let (xs, ys) = linearly_separable(60, 7);
        let cfg = SvmConfig {
            kernel: Kernel::Linear,
            ..SvmConfig::default()
        };
        let svm = Svm::train(&xs, &ys, &cfg).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| svm.predict(x) == y)
            .count();
        assert!(correct >= 58, "only {correct}/60 correct");
    }

    #[test]
    fn rbf_solves_xor() {
        // XOR is not linearly separable; RBF must handle it.
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![-1.0, 1.0, 1.0, -1.0];
        let cfg = SvmConfig {
            kernel: Kernel::Rbf { gamma: 2.0 },
            c: 10.0,
            ..SvmConfig::default()
        };
        let svm = Svm::train(&xs, &ys, &cfg).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(svm.predict(x), y, "at {x:?}");
        }
    }

    #[test]
    fn easy_data_needs_few_support_vectors() {
        // Paper §5.5: well-separated data yields few support vectors.
        let (xs, ys) = linearly_separable(100, 11);
        let cfg = SvmConfig {
            kernel: Kernel::Linear,
            ..SvmConfig::default()
        };
        let svm = Svm::train(&xs, &ys, &cfg).unwrap();
        assert!(
            svm.num_support_vectors() < xs.len() / 2,
            "{} SVs out of {}",
            svm.num_support_vectors(),
            xs.len()
        );
    }

    #[test]
    fn rejects_empty_input() {
        let cfg = SvmConfig::default();
        assert_eq!(
            Svm::train(&[], &[], &cfg),
            Err(TrainSvmError::EmptyTrainingSet)
        );
    }

    #[test]
    fn rejects_bad_labels() {
        let cfg = SvmConfig::default();
        let xs = vec![vec![0.0], vec![1.0]];
        assert_eq!(
            Svm::train(&xs, &[0.0, 1.0], &cfg),
            Err(TrainSvmError::InvalidLabel)
        );
    }

    #[test]
    fn rejects_single_class() {
        let cfg = SvmConfig::default();
        let xs = vec![vec![0.0], vec![1.0]];
        assert_eq!(
            Svm::train(&xs, &[1.0, 1.0], &cfg),
            Err(TrainSvmError::SingleClass)
        );
    }

    #[test]
    fn rejects_ragged_input() {
        let cfg = SvmConfig::default();
        let xs = vec![vec![0.0], vec![1.0, 2.0]];
        assert_eq!(
            Svm::train(&xs, &[1.0, -1.0], &cfg),
            Err(TrainSvmError::DimensionMismatch)
        );
    }

    #[test]
    fn decision_is_continuous_and_signed() {
        let (xs, ys) = linearly_separable(40, 3);
        let svm = Svm::train(&xs, &ys, &SvmConfig::default()).unwrap();
        let d_pos = svm.decision(&[1.0, 1.0]);
        let d_neg = svm.decision(&[-1.0, -1.0]);
        assert!(d_pos > 0.0);
        assert!(d_neg < 0.0);
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let (xs, ys) = linearly_separable(50, 21);
        let cfg = SvmConfig::default();
        let a = Svm::train(&xs, &ys, &cfg).unwrap();
        let b = Svm::train(&xs, &ys, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn q16_decision_tracks_float() {
        use xpro_signal::fixed::Q16;
        let (xs, ys) = linearly_separable(60, 13);
        // Normalize inputs to [0, 1] as the pipeline does.
        let xs: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| x.iter().map(|&v| (v + 2.0) / 4.0).collect())
            .collect();
        let cfg = SvmConfig::default();
        let svm = Svm::train(&xs, &ys, &cfg).unwrap();
        let mut agree = 0;
        for x in &xs {
            let xq: Vec<Q16> = x.iter().map(|&v| Q16::from_f64(v)).collect();
            let d_float = svm.decision(x);
            let d_fixed = svm.decision_q16(&xq).to_f64();
            assert!(
                (d_float - d_fixed).abs() < 0.05 * (1.0 + d_float.abs()),
                "float {d_float} vs fixed {d_fixed}"
            );
            if svm.predict(x) == svm.predict_q16(&xq) {
                agree += 1;
            }
        }
        assert!(agree >= xs.len() - 2, "only {agree}/{} agree", xs.len());
    }

    #[test]
    fn q16_linear_kernel_matches() {
        use xpro_signal::fixed::Q16;
        let (xs, ys) = linearly_separable(40, 19);
        let xs: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| x.iter().map(|&v| (v + 2.0) / 4.0).collect())
            .collect();
        let cfg = SvmConfig {
            kernel: Kernel::Linear,
            ..SvmConfig::default()
        };
        let svm = Svm::train(&xs, &ys, &cfg).unwrap();
        let xq: Vec<Q16> = xs[0].iter().map(|&v| Q16::from_f64(v)).collect();
        let diff = (svm.decision(&xs[0]) - svm.decision_q16(&xq).to_f64()).abs();
        assert!(diff < 0.01, "diff {diff}");
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn decision_rejects_wrong_dim() {
        let (xs, ys) = linearly_separable(20, 5);
        let svm = Svm::train(&xs, &ys, &SvmConfig::default()).unwrap();
        svm.decision(&[0.0]);
    }

    #[test]
    fn truncated_decision_zero_bits_is_exact() {
        use xpro_signal::fixed::Q16;
        let (xs, ys) = linearly_separable(40, 23);
        let xs: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| x.iter().map(|&v| (v + 2.0) / 4.0).collect())
            .collect();
        let svm = Svm::train(&xs, &ys, &SvmConfig::default()).unwrap();
        for x in xs.iter().take(10) {
            let xq: Vec<Q16> = x.iter().map(|&v| Q16::from_f64(v)).collect();
            assert_eq!(svm.decision_q16(&xq), svm.decision_q16_trunc(&xq, 0));
        }
    }

    #[test]
    fn truncated_decision_stays_within_static_envelope() {
        use xpro_signal::fixed::Q16;
        let (xs, ys) = linearly_separable(60, 29);
        let xs: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| x.iter().map(|&v| (v + 2.0) / 4.0).collect())
            .collect();
        for kernel in [Kernel::Rbf { gamma: 1.0 }, Kernel::Linear] {
            let cfg = SvmConfig {
                kernel,
                ..SvmConfig::default()
            };
            let svm = Svm::train(&xs, &ys, &cfg).unwrap();
            let sv = svm.num_support_vectors() as f64;
            let dims = svm.dim() as f64;
            // Same per-SV bounds the static analyzer injects (C = γ = 1).
            for bits in [1u32, 4, 8, 12] {
                let per = f64::from(1u32 << bits);
                let per_sv = match kernel {
                    Kernel::Rbf { .. } => per * (1.0 + 1.0 + dims) + 4.0,
                    _ => per * (1.0 + dims) + 4.0,
                };
                let envelope = sv * per_sv / 65536.0;
                for x in &xs {
                    let xq: Vec<Q16> = x.iter().map(|&v| Q16::from_f64(v)).collect();
                    let exact = svm.decision_q16(&xq).to_f64();
                    let approx = svm.decision_q16_trunc(&xq, bits).to_f64();
                    assert!(
                        (approx - exact).abs() <= envelope,
                        "bits {bits}: |{approx} - {exact}| > {envelope}"
                    );
                }
            }
        }
    }
}
