//! Link-layer framing: each payload carries an 8-bit protocol header
//! (paper §4.2).

/// Protocol header size in bits (paper §4.2: "an 8-bit header in each
/// payload").
pub const HEADER_BITS: u64 = 8;

/// One framed payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Frame {
    payload_bits: u64,
}

impl Frame {
    /// Creates a frame around a payload of the given size.
    pub fn new(payload_bits: u64) -> Self {
        Frame { payload_bits }
    }

    /// A frame carrying `samples` fixed-point samples of `bits_per_sample`
    /// bits each (the paper uses 32-bit samples, §4.4).
    pub fn for_samples(samples: u64, bits_per_sample: u32) -> Self {
        Frame {
            payload_bits: samples * bits_per_sample as u64,
        }
    }

    /// Payload size in bits.
    pub fn payload_bits(&self) -> u64 {
        self.payload_bits
    }

    /// Total on-air size in bits, header included.
    pub fn total_bits(&self) -> u64 {
        self.payload_bits + HEADER_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_eight_bits() {
        assert_eq!(HEADER_BITS, 8);
        assert_eq!(Frame::new(0).total_bits(), 8);
    }

    #[test]
    fn sample_frames_scale_with_width() {
        let f = Frame::for_samples(128, 32);
        assert_eq!(f.payload_bits(), 4096);
        assert_eq!(f.total_bits(), 4104);
    }

    #[test]
    fn one_sample_frame() {
        assert_eq!(Frame::for_samples(1, 32).total_bits(), 40);
    }
}
