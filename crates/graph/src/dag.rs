//! Directed-acyclic-graph utilities: topological ordering and weighted
//! critical paths.
//!
//! XPro's functional cells are "organized by their execution order in the
//! generic classification (data-driven execution)" (paper §2.2); the system
//! delay of a partitioned engine is the critical path through that DAG with
//! node weights (cell latencies) and edge weights (wireless transfer times).

/// A DAG with `f64` node and edge weights.
#[derive(Clone, Debug, Default)]
pub struct WeightedDag {
    node_weights: Vec<f64>,
    /// Adjacency: `edges[u]` holds `(v, weight)` pairs.
    edges: Vec<Vec<(usize, f64)>>,
}

/// Error returned when a cycle prevents topological ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleError;

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("graph contains a cycle")
    }
}

impl std::error::Error for CycleError {}

impl WeightedDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        WeightedDag::default()
    }

    /// Adds a node with the given weight (e.g. cell latency), returning its
    /// id.
    pub fn add_node(&mut self, weight: f64) -> usize {
        self.node_weights.push(weight);
        self.edges.push(Vec::new());
        self.node_weights.len() - 1
    }

    /// Adds a weighted edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or the weight is negative.
    pub fn add_edge(&mut self, from: usize, to: usize, weight: f64) {
        assert!(from < self.len() && to < self.len(), "node out of range");
        assert!(weight >= 0.0, "edge weight must be non-negative");
        self.edges[from].push((to, weight));
    }

    /// Updates a node's weight.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn set_node_weight(&mut self, node: usize, weight: f64) {
        self.node_weights[node] = weight;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.node_weights.len()
    }

    /// Whether the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_weights.is_empty()
    }

    /// Kahn topological order.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph has a cycle.
    pub fn topological_order(&self) -> Result<Vec<usize>, CycleError> {
        let n = self.len();
        let mut indegree = vec![0usize; n];
        for edges in &self.edges {
            for &(v, _) in edges {
                indegree[v] += 1;
            }
        }
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &(v, _) in &self.edges[u] {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(CycleError)
        }
    }

    /// Length of the critical (longest) path: the maximum over all paths of
    /// the sum of node weights plus edge weights along the path.
    ///
    /// Returns `0.0` for an empty graph.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph has a cycle.
    pub fn critical_path(&self) -> Result<f64, CycleError> {
        let order = self.topological_order()?;
        let mut finish = self.node_weights.clone();
        let mut best = 0.0f64;
        for &u in &order {
            best = best.max(finish[u]);
            for &(v, w) in &self.edges[u] {
                let candidate = finish[u] + w + self.node_weights[v];
                if candidate > finish[v] {
                    finish[v] = candidate;
                }
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;

    #[test]
    fn topological_order_respects_edges() {
        let mut g = WeightedDag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        let c = g.add_node(1.0);
        g.add_edge(a, b, 0.0);
        g.add_edge(b, c, 0.0);
        let order = g.topological_order().unwrap();
        let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = WeightedDag::new();
        let a = g.add_node(0.0);
        let b = g.add_node(0.0);
        g.add_edge(a, b, 0.0);
        g.add_edge(b, a, 0.0);
        assert_eq!(g.topological_order(), Err(CycleError));
        assert_eq!(g.critical_path(), Err(CycleError));
    }

    #[test]
    fn critical_path_of_chain() {
        let mut g = WeightedDag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        g.add_edge(a, b, 10.0);
        g.add_edge(b, c, 20.0);
        assert_eq!(g.critical_path().unwrap(), 36.0);
    }

    #[test]
    fn critical_path_takes_longest_branch() {
        let mut g = WeightedDag::new();
        let src = g.add_node(0.0);
        let cheap = g.add_node(1.0);
        let pricey = g.add_node(100.0);
        let sink = g.add_node(0.0);
        g.add_edge(src, cheap, 0.0);
        g.add_edge(src, pricey, 0.0);
        g.add_edge(cheap, sink, 0.0);
        g.add_edge(pricey, sink, 0.0);
        assert_eq!(g.critical_path().unwrap(), 100.0);
    }

    #[test]
    fn isolated_node_weight_counts() {
        let mut g = WeightedDag::new();
        g.add_node(7.0);
        g.add_node(3.0);
        assert_eq!(g.critical_path().unwrap(), 7.0);
    }

    #[test]
    fn empty_graph_has_zero_path() {
        assert_eq!(WeightedDag::new().critical_path().unwrap(), 0.0);
        assert!(WeightedDag::new().is_empty());
    }

    #[test]
    fn set_node_weight_changes_path() {
        let mut g = WeightedDag::new();
        let a = g.add_node(1.0);
        g.set_node_weight(a, 9.0);
        assert_eq!(g.critical_path().unwrap(), 9.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_edge_rejected() {
        let mut g = WeightedDag::new();
        let a = g.add_node(0.0);
        let b = g.add_node(0.0);
        g.add_edge(a, b, -1.0);
    }
}
