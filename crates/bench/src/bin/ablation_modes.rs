//! Ablation A2 — per-module ALU mode selection (design rule 2, §3.1.2).
//!
//! Compares the in-sensor energy of the full pipeline under (a) the
//! Figure-4 per-module optimal monotonic modes, (b) all-serial, (c)
//! all-pipeline and (d) all-parallel forcing.
//!
//! Run: `cargo run --release -p xpro-bench --bin ablation_modes`

use xpro_bench::{fmt, print_table};
use xpro_hw::{AluMode, CellCostModel, ModuleKind, ProcessNode};
use xpro_signal::stats::FeatureKind;

/// The full deployed cell mix of a representative case: all 8 features on
/// all 7 domains, 5 DWT levels, 6 SVM bases, fusion.
fn representative_cells() -> Vec<ModuleKind> {
    let mut cells = Vec::new();
    for window in [128usize, 64, 32, 16, 8, 4, 4] {
        for kind in FeatureKind::ALL {
            cells.push(ModuleKind::Feature {
                kind,
                input_len: window,
                reuses_var: kind == FeatureKind::Std,
            });
        }
    }
    for level in 0..5 {
        cells.push(ModuleKind::DwtLevel {
            input_len: 128 >> level,
            taps: 2,
        });
    }
    for _ in 0..6 {
        cells.push(ModuleKind::Svm {
            support_vectors: 60,
            dims: 12,
            rbf: true,
        });
    }
    cells.push(ModuleKind::ScoreFusion { bases: 6 });
    cells
}

fn main() {
    let model = CellCostModel::default();
    let node = ProcessNode::N90;
    let cells = representative_cells();

    let total_forced = |mode: AluMode| -> f64 {
        cells
            .iter()
            .map(|c| model.cost(&c.op_counts(), mode, c.lanes(), node).energy_pj)
            .sum()
    };
    let total_best: f64 = cells
        .iter()
        .map(|c| model.best_mode(c, node).1.energy_pj)
        .sum();

    let header: Vec<String> = ["policy", "energy (uJ/event)", "vs best"]
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    let mut rows = vec![vec![
        "per-module optimal (rule 2)".to_string(),
        fmt(total_best / 1e6),
        "1.00x".to_string(),
    ]];
    for mode in AluMode::ALL {
        let total = total_forced(mode);
        rows.push(vec![
            format!("all-{mode}"),
            fmt(total / 1e6),
            format!("{:.2}x", total / total_best),
        ]);
    }
    print_table(
        "Ablation A2: monotonic per-module ALU modes vs forced global modes (90nm)",
        &header,
        &rows,
    );
    println!(
        "\nthe all-parallel row is dominated by the DWT's fully spatial matrix multiply\n\
         (the two-orders-of-magnitude overhead of Fig. 4)."
    );
}
