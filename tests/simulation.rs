//! Integration tests between the analytic evaluator and the discrete-event
//! simulator on real trained pipelines: energies must agree exactly, and
//! the simulated (dataflow-overlapped) makespan must lower-bound the
//! serialized Fig.-10 delay while preserving the engine ordering.

use xpro::core::config::SystemConfig;
use xpro::core::generator::{Engine, XProGenerator};
use xpro::core::instance::XProInstance;
use xpro::core::partition::evaluate;
use xpro::core::pipeline::{PipelineConfig, XProPipeline};
use xpro::data::{generate_case_sized, CaseId};
use xpro::ml::SubspaceConfig;
use xpro::sim::{simulate_event, simulate_stream};

fn instance(case: CaseId) -> XProInstance {
    let data = generate_case_sized(case, 100, 17);
    let cfg = PipelineConfig {
        subspace: SubspaceConfig {
            candidates: 10,
            keep_fraction: 0.3,
            min_keep: 3,
            folds: 2,
            ..SubspaceConfig::default()
        },
        ..PipelineConfig::default()
    };
    let p = XProPipeline::train(&data, &cfg).expect("trains");
    let len = p.segment_len();
    XProInstance::new(p.into_built(), SystemConfig::default(), len)
}

#[test]
fn simulated_energy_equals_analytic_energy_on_trained_graphs() {
    let inst = instance(CaseId::E1);
    let generator = XProGenerator::new(&inst);
    for engine in Engine::ALL {
        let p = generator.partition_for(engine);
        let analytic = evaluate(&inst, &p).sensor.total_pj();
        let simulated = simulate_event(&inst, &p).sensor_energy_pj;
        assert!(
            (analytic - simulated).abs() < 1e-5,
            "{engine}: analytic {analytic} vs simulated {simulated}"
        );
    }
}

#[test]
fn simulated_makespan_bounds_and_ordering() {
    let inst = instance(CaseId::M2);
    let generator = XProGenerator::new(&inst);
    let mut sim_delays = Vec::new();
    for engine in [Engine::InAggregator, Engine::InSensor, Engine::CrossEnd] {
        let p = generator.partition_for(engine);
        let serialized = evaluate(&inst, &p).delay.total_s();
        let trace = simulate_event(&inst, &p);
        assert!(
            trace.makespan_s <= serialized * (1.0 + 1e-9),
            "{engine}: sim {} > serialized {serialized}",
            trace.makespan_s
        );
        sim_delays.push((engine, trace.makespan_s));
    }
    // The asynchronous sensor cells overlap, so the dataflow execution keeps
    // the aggregator engine slowest even under simulation.
    let a = sim_delays[0].1;
    let c = sim_delays[2].1;
    assert!(c < a, "cross-end {c} not faster than aggregator {a}");
}

#[test]
fn event_stream_is_stable_at_the_configured_rate() {
    // At the configured sampling rate, back-to-back events must not queue:
    // every event's makespan equals the first's (steady state).
    let inst = instance(CaseId::C1);
    let generator = XProGenerator::new(&inst);
    let p = generator.partition_for(Engine::CrossEnd);
    let period = 1.0 / inst.events_per_second();
    let traces = simulate_stream(&inst, &p, 6, period);
    let first = traces[0].makespan_s;
    for t in &traces {
        assert!(
            (t.makespan_s - first).abs() < 1e-9,
            "queueing at the nominal rate: {} vs {first}",
            t.makespan_s
        );
    }
}

#[test]
fn sensor_parallelism_is_real() {
    // The in-sensor engine's simulated makespan should clearly undercut the
    // serialized sum (independent per-cell ALUs, Fig. 3).
    let inst = instance(CaseId::E2);
    let p = xpro::core::Partition::all_sensor(inst.num_cells());
    let serialized = evaluate(&inst, &p).delay.total_s();
    let trace = simulate_event(&inst, &p);
    assert!(
        trace.makespan_s < serialized * 0.8,
        "sim {} vs serialized {serialized}",
        trace.makespan_s
    );
}
