//! End-to-end training and execution of the generic classification pipeline.
//!
//! Ties the substrates together for one Table-1 case: feature extraction
//! (time domain + 5-level DWT, 56 features), min-max scaling, random-
//! subspace training, cell-graph construction and functional execution of a
//! partitioned engine. The partitioned execution path reproduces exactly the
//! ensemble's predictions — asserted by the cross-end equivalence tests —
//! because a cut changes *where* cells run, never *what* they compute.

use crate::builder::{build_cell_graph, BuildOptions, BuiltGraph};
use crate::error::XProError;
use crate::layout::{Domain, FeatureLayout, DWT_INPUT_LEN, DWT_LEVELS};
use crate::partition::Partition;
use std::collections::BTreeMap;
use xpro_data::Dataset;
use xpro_hw::ApproxConfig;
use xpro_ml::cv::{gather, stratified_split};
use xpro_ml::metrics::accuracy;
use xpro_ml::{MinMaxScaler, RandomSubspaceModel, SubspaceConfig};
use xpro_signal::dwt::{dwt_multilevel, Wavelet};
use xpro_signal::stats::{feature_f64, FeatureKind};
use xpro_signal::window::fit_length;

/// Training options for a pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineConfig {
    /// Random-subspace training configuration.
    pub subspace: SubspaceConfig,
    /// Fraction of segments used for training (paper §4.4: 75 %).
    pub train_fraction: f64,
    /// Wavelet family for the DWT cells.
    pub wavelet: Wavelet,
    /// Cell-graph construction options.
    pub build: BuildOptions,
    /// Split seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            subspace: SubspaceConfig::default(),
            train_fraction: 0.75,
            wavelet: Wavelet::Haar,
            build: BuildOptions::default(),
            seed: 7,
        }
    }
}

impl PipelineConfig {
    /// Starts a fluent builder seeded with the default configuration.
    ///
    /// ```
    /// use xpro_core::pipeline::PipelineConfig;
    ///
    /// let cfg = PipelineConfig::builder().train_fraction(0.8).seed(3).build()?;
    /// assert_eq!(cfg.seed, 3);
    /// # Ok::<(), xpro_core::XProError>(())
    /// ```
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder::default()
    }

    /// Re-opens this configuration as a builder, for deriving variants.
    ///
    /// ```
    /// use xpro_core::pipeline::PipelineConfig;
    ///
    /// let base = PipelineConfig::builder().seed(3).build()?;
    /// let variant = base.into_builder().train_fraction(0.8).build()?;
    /// assert_eq!(variant.seed, 3);
    /// # Ok::<(), xpro_core::XProError>(())
    /// ```
    pub fn into_builder(self) -> PipelineConfigBuilder {
        PipelineConfigBuilder { cfg: self }
    }
}

/// Fluent builder for [`PipelineConfig`]; ranges are validated once, at
/// [`PipelineConfigBuilder::build`].
#[derive(Clone, Debug, Default)]
pub struct PipelineConfigBuilder {
    cfg: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Random-subspace training configuration.
    pub fn subspace(mut self, subspace: SubspaceConfig) -> Self {
        self.cfg.subspace = subspace;
        self
    }

    /// Fraction of segments used for training (must land in `(0, 1)`).
    pub fn train_fraction(mut self, fraction: f64) -> Self {
        self.cfg.train_fraction = fraction;
        self
    }

    /// Wavelet family for the DWT cells.
    pub fn wavelet(mut self, wavelet: Wavelet) -> Self {
        self.cfg.wavelet = wavelet;
        self
    }

    /// Cell-graph construction options.
    pub fn build_options(mut self, build: BuildOptions) -> Self {
        self.cfg.build = build;
        self
    }

    /// Train/test split seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validates the accumulated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`XProError::Config`] when the train fraction leaves either
    /// split empty, the subspace has no candidates or features, the kept
    /// fraction is out of `(0, 1]`, or cross-validation has fewer than two
    /// folds.
    pub fn build(self) -> Result<PipelineConfig, XProError> {
        let c = &self.cfg;
        if !(c.train_fraction > 0.0 && c.train_fraction < 1.0) {
            return Err(XProError::config(format!(
                "train_fraction must be in (0, 1), got {}",
                c.train_fraction
            )));
        }
        if c.subspace.candidates == 0 {
            return Err(XProError::config("subspace.candidates must be positive"));
        }
        if c.subspace.features_per_base == 0 {
            return Err(XProError::config(
                "subspace.features_per_base must be positive",
            ));
        }
        if !(c.subspace.keep_fraction > 0.0 && c.subspace.keep_fraction <= 1.0) {
            return Err(XProError::config(format!(
                "subspace.keep_fraction must be in (0, 1], got {}",
                c.subspace.keep_fraction
            )));
        }
        if c.subspace.folds < 2 {
            return Err(XProError::config("subspace.folds must be at least 2"));
        }
        if c.build.dwt_taps < 2 {
            return Err(XProError::config("build.dwt_taps must be at least 2"));
        }
        Ok(self.cfg)
    }
}

/// Extracts the 56-entry feature vector of the generic framework from one
/// raw segment (any length; padded/truncated to the 128-sample DWT input).
pub fn extract_features(segment: &[f64], wavelet: Wavelet) -> Vec<f64> {
    let padded = fit_length(segment, DWT_INPUT_LEN);
    let dec = dwt_multilevel(&padded, DWT_LEVELS, wavelet);
    let mut out = vec![0.0; FeatureLayout::DIM];
    let mut fill = |domain: Domain, window: &[f64]| {
        for kind in FeatureKind::ALL {
            out[FeatureLayout::index(domain, kind)] = feature_f64(kind, window);
        }
    };
    fill(Domain::Time, &padded);
    for (level, detail) in dec.details.iter().enumerate() {
        fill(Domain::Detail(level as u8 + 1), detail);
    }
    fill(Domain::Approx, &dec.approx);
    out
}

/// A trained XPro pipeline for one dataset case.
#[derive(Clone, Debug)]
pub struct XProPipeline {
    model: RandomSubspaceModel,
    scaler: MinMaxScaler,
    built: BuiltGraph,
    wavelet: Wavelet,
    /// Accuracy on the held-out test split.
    test_accuracy: f64,
    /// Raw (unpadded) segment length of the case.
    segment_len: usize,
}

impl XProPipeline {
    /// Trains the full pipeline on a dataset: 75/25 stratified split,
    /// feature extraction, scaling, random-subspace training, cell-graph
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns [`XProError::Train`] when ensemble training fails (e.g. a
    /// degenerate dataset) and [`XProError::Config`] for an empty dataset.
    pub fn train(dataset: &Dataset, cfg: &PipelineConfig) -> Result<Self, XProError> {
        if dataset.segments.is_empty() {
            return Err(XProError::config("dataset has no segments"));
        }
        let features: Vec<Vec<f64>> = dataset
            .segments
            .iter()
            .map(|s| extract_features(s, cfg.wavelet))
            .collect();
        let split = stratified_split(&dataset.labels, cfg.train_fraction, cfg.seed);
        let train_x = gather(&features, &split.train);
        let train_y = gather(&dataset.labels, &split.train);
        let scaler = MinMaxScaler::fit(&train_x);
        let train_x = scaler.transform(&train_x);
        let model = RandomSubspaceModel::train(&train_x, &train_y, &cfg.subspace)?;

        let test_x = scaler.transform(&gather(&features, &split.test));
        let test_y = gather(&dataset.labels, &split.test);
        let preds: Vec<f64> = test_x.iter().map(|x| model.predict(x)).collect();
        let test_accuracy = accuracy(&preds, &test_y);

        let built = build_cell_graph(&model, &cfg.build);
        Ok(XProPipeline {
            model,
            scaler,
            built,
            wavelet: cfg.wavelet,
            test_accuracy,
            segment_len: dataset.segment_len,
        })
    }

    /// Classifies a raw segment through the monolithic (vector) path.
    pub fn classify(&self, segment: &[f64]) -> f64 {
        let features = extract_features(segment, self.wavelet);
        self.model.predict(&self.scaler.transform_one(&features))
    }

    /// Classifies a raw segment by executing the functional-cell graph under
    /// an explicit partition. Cell placement affects only where work runs;
    /// the returned label is identical to [`XProPipeline::classify`] — the
    /// functional-equivalence property of the cross-end architecture.
    ///
    /// # Panics
    ///
    /// Panics if the partition size differs from the cell count.
    pub fn classify_partitioned(&self, segment: &[f64], partition: &Partition) -> f64 {
        assert_eq!(
            partition.in_sensor.len(),
            self.built.graph.len(),
            "partition size mismatch"
        );
        let padded = fit_length(segment, DWT_INPUT_LEN);
        let dec = dwt_multilevel(&padded, DWT_LEVELS, self.wavelet);
        let window_of = |domain: Domain| -> &[f64] {
            match domain {
                Domain::Time => &padded,
                Domain::Detail(l) => &dec.details[l as usize - 1],
                Domain::Approx => &dec.approx,
            }
        };

        // Execute feature cells (graph order is topological).
        let mut raw_feature: Vec<f64> = vec![0.0; FeatureLayout::DIM];
        for (&fi, &cid) in &self.built.feature_cells {
            let (domain, kind) = FeatureLayout::decode(fi);
            let cell = &self.built.graph.cells()[cid];
            let value = match cell.module {
                xpro_hw::ModuleKind::Feature {
                    reuses_var: true, ..
                } => {
                    // Std reusing Var: sqrt of the upstream Var cell value.
                    let var_idx = FeatureLayout::index(domain, FeatureKind::Var);
                    raw_feature[var_idx].max(0.0).sqrt()
                }
                _ => feature_f64(kind, window_of(domain)),
            };
            raw_feature[fi] = value;
        }

        // SVM cells vote on their (scaled) feature subsets.
        let votes: Vec<f64> = self
            .built
            .svm_cells
            .iter()
            .zip(self.model.bases())
            .map(|(_, base)| {
                let projected: Vec<f64> = base
                    .feature_indices
                    .iter()
                    .map(|&fi| self.scaler.transform_feature(fi, raw_feature[fi]))
                    .collect();
                base.svm.predict(&projected)
            })
            .collect();

        // Fusion cell.
        self.model.fusion().predict(&votes)
    }

    /// Classifies a raw segment with the in-sensor cells running on the
    /// Q16.16 fixed-point datapath (paper §4.4: "32-bit fixed-number with
    /// 16-bit integer and 16-bit decimals for functional cells") and the
    /// in-aggregator cells in `f64` software — the numerically faithful
    /// cross-end execution.
    ///
    /// Quantization can flip predictions on segments close to the decision
    /// boundary; the integration tests bound the disagreement rate against
    /// [`XProPipeline::classify`].
    ///
    /// # Panics
    ///
    /// Panics if the partition size differs from the cell count.
    pub fn classify_partitioned_q16(&self, segment: &[f64], partition: &Partition) -> f64 {
        assert_eq!(
            partition.in_sensor.len(),
            self.built.graph.len(),
            "partition size mismatch"
        );
        use xpro_signal::dwt::dwt_multilevel_q16;
        use xpro_signal::fixed::Q16;
        use xpro_signal::stats::feature_q16;

        let padded = fit_length(segment, DWT_INPUT_LEN);
        // Float path for aggregator-side cells.
        let dec = dwt_multilevel(&padded, DWT_LEVELS, self.wavelet);
        // Fixed path for sensor-side cells.
        let padded_q: Vec<Q16> = padded.iter().map(|&v| Q16::from_f64(v)).collect();
        let (details_q, approx_q) = dwt_multilevel_q16(&padded_q, DWT_LEVELS, self.wavelet);

        let float_window = |domain: Domain| -> &[f64] {
            match domain {
                Domain::Time => &padded,
                Domain::Detail(l) => &dec.details[l as usize - 1],
                Domain::Approx => &dec.approx,
            }
        };
        let fixed_window = |domain: Domain| -> &[Q16] {
            match domain {
                Domain::Time => &padded_q,
                Domain::Detail(l) => &details_q[l as usize - 1],
                Domain::Approx => &approx_q,
            }
        };

        let mut raw_feature: Vec<f64> = vec![0.0; FeatureLayout::DIM];
        for (&fi, &cid) in &self.built.feature_cells {
            let (domain, kind) = FeatureLayout::decode(fi);
            let cell = &self.built.graph.cells()[cid];
            let on_sensor = partition.in_sensor[cid];
            let value = match cell.module {
                xpro_hw::ModuleKind::Feature {
                    reuses_var: true, ..
                } => {
                    let var = raw_feature[FeatureLayout::index(domain, FeatureKind::Var)];
                    if on_sensor {
                        Q16::from_f64(var).sqrt().to_f64()
                    } else {
                        var.max(0.0).sqrt()
                    }
                }
                _ => {
                    if on_sensor {
                        feature_q16(kind, fixed_window(domain)).to_f64()
                    } else {
                        feature_f64(kind, float_window(domain))
                    }
                }
            };
            raw_feature[fi] = value;
        }

        let votes: Vec<f64> = self
            .built
            .svm_cells
            .iter()
            .zip(self.model.bases())
            .map(|(cell_id, base)| {
                let projected: Vec<f64> = base
                    .feature_indices
                    .iter()
                    .map(|&fi| self.scaler.transform_feature(fi, raw_feature[fi]))
                    .collect();
                if partition.in_sensor[*cell_id] {
                    // In-sensor SVM cells evaluate on the Q16 datapath too.
                    let projected_q: Vec<Q16> =
                        projected.iter().map(|&v| Q16::from_f64(v)).collect();
                    base.svm.predict_q16(&projected_q)
                } else {
                    base.svm.predict(&projected)
                }
            })
            .collect();
        self.model.fusion().predict(&votes)
    }

    /// Per-base decision scores of the cross-end Q16 execution path under a
    /// partition — the raw SVM decision values before thresholding into
    /// votes. In-sensor SVM cells evaluate on the Q16 datapath; aggregator
    /// cells in `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the partition size differs from the cell count.
    pub fn base_scores_q16(&self, segment: &[f64], partition: &Partition) -> Vec<f64> {
        self.base_scores_q16_approx(segment, partition, &BTreeMap::new())
    }

    /// Per-base decision scores under a partition *and* a per-cell
    /// approximation assignment, executing the approximate kernels:
    ///
    /// * `dwt_skip` on the deepest DWT cell replaces that level's filter
    ///   bank with the decimation approximation on **both** ends (an
    ///   algorithmic knob: placement changes where cells run, never what
    ///   they compute);
    /// * `mul_truncation_bits` applies only to in-sensor SVM cells (it
    ///   models the sensor's truncated multiplier array; the aggregator's
    ///   hardware is exact);
    /// * `svm_prune` power-gates a base entirely — its score is reported
    ///   as `0.0` and it abstains from fusion on both ends.
    ///
    /// A `dwt_skip` assigned to any non-deepest DWT cell is ignored by
    /// execution (the planner only ever assigns the deepest level; the
    /// static analysis of such an assignment is conservative).
    ///
    /// # Panics
    ///
    /// Panics if the partition size differs from the cell count.
    pub fn base_scores_q16_approx(
        &self,
        segment: &[f64],
        partition: &Partition,
        assignment: &BTreeMap<usize, ApproxConfig>,
    ) -> Vec<f64> {
        assert_eq!(
            partition.in_sensor.len(),
            self.built.graph.len(),
            "partition size mismatch"
        );
        use xpro_signal::dwt::{dwt_multilevel_approx, dwt_multilevel_q16_approx};
        use xpro_signal::fixed::Q16;
        use xpro_signal::stats::feature_q16;

        let cells = self.built.graph.cells();
        let deepest_dwt = cells
            .iter()
            .rposition(|c| matches!(c.module, xpro_hw::ModuleKind::DwtLevel { .. }));
        let skip_deepest = deepest_dwt.is_some_and(|cid| {
            assignment
                .get(&cid)
                .map(|cfg| cfg.effective_for(&cells[cid].module).dwt_skip)
                .unwrap_or(false)
        });

        let padded = fit_length(segment, DWT_INPUT_LEN);
        let dec = dwt_multilevel_approx(&padded, DWT_LEVELS, self.wavelet, skip_deepest);
        let padded_q: Vec<Q16> = padded.iter().map(|&v| Q16::from_f64(v)).collect();
        let (details_q, approx_q) =
            dwt_multilevel_q16_approx(&padded_q, DWT_LEVELS, self.wavelet, skip_deepest);

        let float_window = |domain: Domain| -> &[f64] {
            match domain {
                Domain::Time => &padded,
                Domain::Detail(l) => &dec.details[l as usize - 1],
                Domain::Approx => &dec.approx,
            }
        };
        let fixed_window = |domain: Domain| -> &[Q16] {
            match domain {
                Domain::Time => &padded_q,
                Domain::Detail(l) => &details_q[l as usize - 1],
                Domain::Approx => &approx_q,
            }
        };

        let mut raw_feature: Vec<f64> = vec![0.0; FeatureLayout::DIM];
        for (&fi, &cid) in &self.built.feature_cells {
            let (domain, kind) = FeatureLayout::decode(fi);
            let cell = &self.built.graph.cells()[cid];
            let on_sensor = partition.in_sensor[cid];
            let value = match cell.module {
                xpro_hw::ModuleKind::Feature {
                    reuses_var: true, ..
                } => {
                    let var = raw_feature[FeatureLayout::index(domain, FeatureKind::Var)];
                    if on_sensor {
                        Q16::from_f64(var).sqrt().to_f64()
                    } else {
                        var.max(0.0).sqrt()
                    }
                }
                _ => {
                    if on_sensor {
                        feature_q16(kind, fixed_window(domain)).to_f64()
                    } else {
                        feature_f64(kind, float_window(domain))
                    }
                }
            };
            raw_feature[fi] = value;
        }

        self.built
            .svm_cells
            .iter()
            .zip(self.model.bases())
            .map(|(cell_id, base)| {
                let eff = assignment
                    .get(cell_id)
                    .map(|cfg| cfg.effective_for(&self.built.graph.cells()[*cell_id].module))
                    .unwrap_or(xpro_hw::ApproxConfig::EXACT);
                if eff.svm_prune {
                    return 0.0;
                }
                let projected: Vec<f64> = base
                    .feature_indices
                    .iter()
                    .map(|&fi| self.scaler.transform_feature(fi, raw_feature[fi]))
                    .collect();
                if partition.in_sensor[*cell_id] {
                    let projected_q: Vec<Q16> =
                        projected.iter().map(|&v| Q16::from_f64(v)).collect();
                    base.svm
                        .decision_q16_trunc(&projected_q, u32::from(eff.mul_truncation_bits))
                        .to_f64()
                } else {
                    base.svm.decision(&projected)
                }
            })
            .collect()
    }

    /// Classifies a raw segment on the cross-end Q16 path under a partition
    /// and an approximation assignment (see
    /// [`XProPipeline::base_scores_q16_approx`] for the kernel semantics).
    /// Pruned bases abstain (vote `0.0`); all other scores threshold at
    /// zero as usual.
    ///
    /// # Panics
    ///
    /// Panics if the partition size differs from the cell count.
    pub fn classify_partitioned_q16_approx(
        &self,
        segment: &[f64],
        partition: &Partition,
        assignment: &BTreeMap<usize, ApproxConfig>,
    ) -> f64 {
        let scores = self.base_scores_q16_approx(segment, partition, assignment);
        let votes: Vec<f64> = self
            .built
            .svm_cells
            .iter()
            .zip(&scores)
            .map(|(cell_id, &score)| {
                let pruned = assignment
                    .get(cell_id)
                    .map(|cfg| {
                        cfg.effective_for(&self.built.graph.cells()[*cell_id].module)
                            .svm_prune
                    })
                    .unwrap_or(false);
                if pruned {
                    0.0
                } else if score >= 0.0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        self.model.fusion().predict(&votes)
    }

    /// The trained ensemble.
    pub fn model(&self) -> &RandomSubspaceModel {
        &self.model
    }

    /// The fitted feature scaler.
    pub fn scaler(&self) -> &MinMaxScaler {
        &self.scaler
    }

    /// The constructed cell graph and wiring.
    pub fn built(&self) -> &BuiltGraph {
        &self.built
    }

    /// Consumes the pipeline, returning the cell graph and wiring.
    pub fn into_built(self) -> BuiltGraph {
        self.built
    }

    /// Held-out test accuracy measured during training.
    pub fn test_accuracy(&self) -> f64 {
        self.test_accuracy
    }

    /// Raw segment length of the trained case.
    pub fn segment_len(&self) -> usize {
        self.segment_len
    }

    /// Wavelet used by the DWT cells.
    pub fn wavelet(&self) -> Wavelet {
        self.wavelet
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;
    use xpro_data::{generate_case_sized, CaseId};

    fn quick_cfg() -> PipelineConfig {
        PipelineConfig::builder()
            .subspace(SubspaceConfig {
                candidates: 10,
                features_per_base: 8,
                keep_fraction: 0.3,
                min_keep: 3,
                folds: 2,
                ..SubspaceConfig::default()
            })
            .build()
            .unwrap()
    }

    #[test]
    fn builder_defaults_match_default_impl() {
        assert_eq!(
            PipelineConfig::builder().build().unwrap(),
            PipelineConfig::default()
        );
    }

    #[test]
    fn builder_rejects_out_of_range_values() {
        for bad in [
            PipelineConfig::builder().train_fraction(0.0).build(),
            PipelineConfig::builder().train_fraction(1.0).build(),
            PipelineConfig::builder()
                .subspace(SubspaceConfig {
                    candidates: 0,
                    ..SubspaceConfig::default()
                })
                .build(),
            PipelineConfig::builder()
                .subspace(SubspaceConfig {
                    keep_fraction: 0.0,
                    ..SubspaceConfig::default()
                })
                .build(),
            PipelineConfig::builder()
                .subspace(SubspaceConfig {
                    folds: 1,
                    ..SubspaceConfig::default()
                })
                .build(),
        ] {
            assert!(matches!(bad, Err(crate::XProError::Config(_))), "{bad:?}");
        }
    }

    #[test]
    fn trains_on_a_small_case_with_decent_accuracy() {
        let data = generate_case_sized(CaseId::E2, 120, 1);
        let p = XProPipeline::train(&data, &quick_cfg()).unwrap();
        assert!(
            p.test_accuracy() > 0.6,
            "test accuracy {}",
            p.test_accuracy()
        );
        assert_eq!(p.segment_len(), 128);
    }

    #[test]
    fn feature_extraction_has_layout_dim() {
        let seg = vec![0.5; 82];
        let f = extract_features(&seg, Wavelet::Haar);
        assert_eq!(f.len(), FeatureLayout::DIM);
    }

    #[test]
    fn partitioned_execution_matches_vector_path() {
        let data = generate_case_sized(CaseId::C1, 100, 2);
        let p = XProPipeline::train(&data, &quick_cfg()).unwrap();
        let n = p.built().graph.len();
        let partitions = [
            Partition::all_sensor(n),
            Partition::all_aggregator(n),
            Partition {
                in_sensor: (0..n).map(|i| i % 2 == 0).collect(),
            },
        ];
        for seg in data.segments.iter().take(30) {
            let reference = p.classify(seg);
            for part in &partitions {
                assert_eq!(
                    p.classify_partitioned(seg, part),
                    reference,
                    "cross-end execution diverged"
                );
            }
        }
    }

    #[test]
    fn fixed_point_execution_rarely_disagrees_with_float() {
        let data = generate_case_sized(CaseId::E1, 100, 4);
        let p = XProPipeline::train(&data, &quick_cfg()).unwrap();
        let n = p.built().graph.len();
        let all_sensor = Partition::all_sensor(n);
        let mut disagreements = 0usize;
        for seg in &data.segments {
            if p.classify_partitioned_q16(seg, &all_sensor) != p.classify(seg) {
                disagreements += 1;
            }
        }
        // Q16.16 quantization may flip boundary segments, but only rarely.
        assert!(
            disagreements <= data.len() / 10,
            "{disagreements}/{} disagreements",
            data.len()
        );
    }

    #[test]
    fn q16_execution_on_all_aggregator_matches_float_exactly() {
        // With every cell on the aggregator, the Q16 path computes nothing
        // in fixed point and must equal the monolithic classifier.
        let data = generate_case_sized(CaseId::M2, 60, 5);
        let p = XProPipeline::train(&data, &quick_cfg()).unwrap();
        let part = Partition::all_aggregator(p.built().graph.len());
        for seg in data.segments.iter().take(20) {
            assert_eq!(p.classify_partitioned_q16(seg, &part), p.classify(seg));
        }
    }

    #[test]
    fn empty_assignment_matches_exact_q16_path() {
        let data = generate_case_sized(CaseId::E1, 80, 6);
        let p = XProPipeline::train(&data, &quick_cfg()).unwrap();
        let n = p.built().graph.len();
        let parts = [
            Partition::all_sensor(n),
            Partition {
                in_sensor: (0..n).map(|i| i % 3 != 0).collect(),
            },
        ];
        for seg in data.segments.iter().take(20) {
            for part in &parts {
                assert_eq!(
                    p.classify_partitioned_q16_approx(seg, part, &BTreeMap::new()),
                    p.classify_partitioned_q16(seg, part),
                );
            }
        }
    }

    #[test]
    fn pruned_bases_abstain_and_report_zero_scores() {
        let data = generate_case_sized(CaseId::C1, 80, 7);
        let p = XProPipeline::train(&data, &quick_cfg()).unwrap();
        let n = p.built().graph.len();
        let part = Partition::all_sensor(n);
        let mut assignment = BTreeMap::new();
        for &cid in &p.built().svm_cells {
            assignment.insert(
                cid,
                ApproxConfig {
                    svm_prune: true,
                    ..ApproxConfig::EXACT
                },
            );
        }
        let seg = &data.segments[0];
        let scores = p.base_scores_q16_approx(seg, &part, &assignment);
        assert!(scores.iter().all(|&s| s == 0.0));
        // All bases abstaining, the fusion sees a zero score: predicts +1.
        assert_eq!(
            p.classify_partitioned_q16_approx(seg, &part, &assignment),
            1.0
        );
    }

    #[test]
    fn truncation_deviates_scores_only_on_sensor_side() {
        let data = generate_case_sized(CaseId::E2, 80, 8);
        let p = XProPipeline::train(&data, &quick_cfg()).unwrap();
        let n = p.built().graph.len();
        let mut assignment = BTreeMap::new();
        for &cid in &p.built().svm_cells {
            assignment.insert(
                cid,
                ApproxConfig {
                    mul_truncation_bits: 8,
                    ..ApproxConfig::EXACT
                },
            );
        }
        let seg = &data.segments[0];
        // Aggregator-side: the truncated multiplier is sensor hardware, so
        // scores are identical to exact.
        let agg = Partition::all_aggregator(n);
        assert_eq!(
            p.base_scores_q16_approx(seg, &agg, &assignment),
            p.base_scores_q16(seg, &agg),
        );
        // Sensor-side: the approximate kernel runs; scores may move but
        // stay finite.
        let sens = Partition::all_sensor(n);
        let exact = p.base_scores_q16(seg, &sens);
        let approx = p.base_scores_q16_approx(seg, &sens, &assignment);
        assert_eq!(exact.len(), approx.len());
        assert!(approx.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn classify_agrees_with_model_predict_on_test_data() {
        let data = generate_case_sized(CaseId::M1, 80, 3);
        let p = XProPipeline::train(&data, &quick_cfg()).unwrap();
        let seg = &data.segments[0];
        let features = extract_features(seg, Wavelet::Haar);
        let direct = p.model().predict(&p.scaler().transform_one(&features));
        assert_eq!(p.classify(seg), direct);
    }
}
