//! Random-subspace ensemble classifier (paper §2.1, §4.4).
//!
//! Each candidate base classifier is an SVM trained on a random subset of the
//! statistical feature set (12 features per base in the paper). Candidates
//! are ranked by validation accuracy; the top fraction survives (paper: 100
//! candidates, top 10 %). A least-squares weighted-voting stage fuses the
//! surviving bases.
//!
//! The trained ensemble is what defines the *functional cell topology* of an
//! XPro instance: only the features that appear in some surviving base spawn
//! feature cells, and each surviving base spawns one SVM cell whose cost
//! scales with its support-vector count (paper §2.2, §5.5).

use crate::cv::{fold_complement, gather, stratified_k_fold};
use crate::fusion::FusionWeights;
use crate::svm::{Svm, SvmConfig, TrainSvmError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Configuration of the random-subspace trainer.
///
/// The defaults are scaled-down but shape-preserving relative to the paper's
/// §4.4 settings; [`SubspaceConfig::paper`] gives the full-size procedure.
#[derive(Clone, Debug, PartialEq)]
pub struct SubspaceConfig {
    /// Number of candidate base classifiers to train (paper: 100).
    pub candidates: usize,
    /// Features drawn per base classifier (paper: 12).
    pub features_per_base: usize,
    /// Fraction of candidates kept, by validation accuracy (paper: 0.10).
    pub keep_fraction: f64,
    /// Lower bound on the number of surviving bases.
    pub min_keep: usize,
    /// Number of cross-validation folds used to score candidates (paper: 10).
    pub folds: usize,
    /// Base SVM configuration.
    pub svm: SvmConfig,
    /// Master seed for subset sampling and fold assignment.
    pub seed: u64,
}

impl Default for SubspaceConfig {
    fn default() -> Self {
        SubspaceConfig {
            candidates: 30,
            features_per_base: 12,
            keep_fraction: 0.2,
            min_keep: 4,
            folds: 3,
            svm: SvmConfig::default(),
            seed: 42,
        }
    }
}

impl SubspaceConfig {
    /// The paper's full-size procedure: 100 candidates, 12 features per base,
    /// top 10 % kept, 10-fold cross-validation.
    pub fn paper() -> Self {
        SubspaceConfig {
            candidates: 100,
            features_per_base: 12,
            keep_fraction: 0.10,
            min_keep: 2,
            folds: 10,
            svm: SvmConfig::default(),
            seed: 42,
        }
    }
}

/// One surviving base classifier of the ensemble.
#[derive(Clone, Debug, PartialEq)]
pub struct BaseClassifier {
    /// Global feature indices this base consumes, sorted ascending.
    pub feature_indices: Vec<usize>,
    /// The trained SVM over the projected features.
    pub svm: Svm,
    /// Mean cross-validation accuracy this candidate scored during selection.
    pub validation_accuracy: f64,
}

impl BaseClassifier {
    /// Casts this base's ±1 vote on a full feature vector.
    pub fn vote(&self, features: &[f64]) -> f64 {
        let projected = project(features, &self.feature_indices);
        self.svm.predict(&projected)
    }
}

/// Error returned by [`RandomSubspaceModel::train`].
#[derive(Clone, Debug, PartialEq)]
pub enum TrainEnsembleError {
    /// The feature matrix was empty or ragged.
    BadInput(String),
    /// No candidate could be trained (e.g., degenerate folds).
    NoViableCandidate,
    /// A base SVM failed to train.
    Svm(TrainSvmError),
}

impl std::fmt::Display for TrainEnsembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainEnsembleError::BadInput(msg) => write!(f, "bad training input: {msg}"),
            TrainEnsembleError::NoViableCandidate => {
                f.write_str("no candidate base classifier could be trained")
            }
            TrainEnsembleError::Svm(e) => write!(f, "base svm training failed: {e}"),
        }
    }
}

impl std::error::Error for TrainEnsembleError {}

impl From<TrainSvmError> for TrainEnsembleError {
    fn from(e: TrainSvmError) -> Self {
        TrainEnsembleError::Svm(e)
    }
}

/// A trained random-subspace ensemble with least-squares weighted voting.
#[derive(Clone, Debug, PartialEq)]
pub struct RandomSubspaceModel {
    bases: Vec<BaseClassifier>,
    fusion: FusionWeights,
    dim: usize,
}

impl RandomSubspaceModel {
    /// Trains the ensemble on normalized feature vectors and ±1 labels.
    ///
    /// Candidate ranking uses stratified k-fold cross-validation on the
    /// training data; the final base SVMs and the fusion weights are refit on
    /// the full training set (weights on out-of-fold votes to avoid bias).
    ///
    /// # Errors
    ///
    /// Returns [`TrainEnsembleError`] on empty/ragged input, when labels are
    /// not ±1, or when no candidate survives.
    pub fn train(
        xs: &[Vec<f64>],
        ys: &[f64],
        cfg: &SubspaceConfig,
    ) -> Result<Self, TrainEnsembleError> {
        let dim = validate_input(xs, ys)?;
        if cfg.features_per_base == 0 || cfg.candidates == 0 {
            return Err(TrainEnsembleError::BadInput(
                "candidates and features_per_base must be positive".into(),
            ));
        }
        let per_base = cfg.features_per_base.min(dim);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let folds = stratified_k_fold(ys, cfg.folds.max(2), cfg.seed ^ 0x000f_01d5);

        // Draw candidate subsets.
        let all_features: Vec<usize> = (0..dim).collect();
        let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(cfg.candidates);
        for _ in 0..cfg.candidates {
            let mut subset: Vec<usize> = all_features
                .choose_multiple(&mut rng, per_base)
                .copied()
                .collect();
            subset.sort_unstable();
            candidates.push(subset);
        }

        // Score every candidate by k-fold CV accuracy, collecting the
        // out-of-fold votes for the fusion fit.
        let mut scored: Vec<(usize, f64, Vec<f64>)> = Vec::new(); // (cand, acc, oof votes)
        for (ci, subset) in candidates.iter().enumerate() {
            match cv_votes(xs, ys, subset, &folds, &cfg.svm) {
                Some((acc, votes)) => scored.push((ci, acc, votes)),
                None => continue, // degenerate fold (single class) — skip
            }
        }
        if scored.is_empty() {
            return Err(TrainEnsembleError::NoViableCandidate);
        }
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("accuracies are finite"));
        let keep = ((scored.len() as f64) * cfg.keep_fraction).ceil() as usize;
        let keep = keep.clamp(cfg.min_keep.max(1), scored.len());
        scored.truncate(keep);

        // Fit fusion on the out-of-fold vote matrix of the survivors.
        let votes: Vec<Vec<f64>> = (0..ys.len())
            .map(|i| scored.iter().map(|(_, _, v)| v[i]).collect())
            .collect();
        let fusion = FusionWeights::fit(&votes, ys);

        // Refit surviving bases on the complete training set.
        let mut bases = Vec::with_capacity(keep);
        for (ci, acc, _) in &scored {
            let subset = &candidates[*ci];
            let projected: Vec<Vec<f64>> = xs.iter().map(|x| project(x, subset)).collect();
            let svm = Svm::train(&projected, ys, &cfg.svm)?;
            bases.push(BaseClassifier {
                feature_indices: subset.clone(),
                svm,
                validation_accuracy: *acc,
            });
        }

        Ok(RandomSubspaceModel { bases, fusion, dim })
    }

    /// Fused ±1 prediction for a full (normalized) feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training dimensionality.
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.fusion.predict(&self.votes(features))
    }

    /// Fused real-valued score (weighted vote sum).
    pub fn score(&self, features: &[f64]) -> f64 {
        self.fusion.score(&self.votes(features))
    }

    /// The individual ±1 votes of every base classifier.
    pub fn votes(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.dim, "input dimension mismatch");
        self.bases.iter().map(|b| b.vote(features)).collect()
    }

    /// The surviving base classifiers, best validation accuracy first.
    pub fn bases(&self) -> &[BaseClassifier] {
        &self.bases
    }

    /// The fitted fusion weights.
    pub fn fusion(&self) -> &FusionWeights {
        &self.fusion
    }

    /// Union of global feature indices consumed by any base.
    ///
    /// This is the set that decides which feature cells exist in the XPro
    /// instance (paper §2.2: "the number of functional cells is decided by
    /// the feature set and random subspace training").
    pub fn used_features(&self) -> BTreeSet<usize> {
        self.bases
            .iter()
            .flat_map(|b| b.feature_indices.iter().copied())
            .collect()
    }

    /// Training dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

fn validate_input(xs: &[Vec<f64>], ys: &[f64]) -> Result<usize, TrainEnsembleError> {
    if xs.is_empty() || xs.len() != ys.len() {
        return Err(TrainEnsembleError::BadInput(
            "empty training set or label count mismatch".into(),
        ));
    }
    let dim = xs[0].len();
    if dim == 0 || xs.iter().any(|x| x.len() != dim) {
        return Err(TrainEnsembleError::BadInput(
            "ragged or zero-dimensional feature matrix".into(),
        ));
    }
    if ys.iter().any(|&y| y != 1.0 && y != -1.0) {
        return Err(TrainEnsembleError::BadInput("labels must be ±1".into()));
    }
    Ok(dim)
}

/// Runs k-fold CV of one candidate subset; returns (mean accuracy,
/// out-of-fold votes per sample), or `None` if every fold was degenerate.
fn cv_votes(
    xs: &[Vec<f64>],
    ys: &[f64],
    subset: &[usize],
    folds: &[Vec<usize>],
    svm_cfg: &SvmConfig,
) -> Option<(f64, Vec<f64>)> {
    let n = xs.len();
    let mut votes = vec![0.0; n];
    let mut correct = 0usize;
    let mut scored = 0usize;
    for fold in folds {
        let train_idx = fold_complement(fold, n);
        let train_x: Vec<Vec<f64>> = gather(xs, &train_idx)
            .into_iter()
            .map(|x| project(&x, subset))
            .collect();
        let train_y = gather(ys, &train_idx);
        let Ok(svm) = Svm::train(&train_x, &train_y, svm_cfg) else {
            continue;
        };
        for &i in fold {
            let vote = svm.predict(&project(&xs[i], subset));
            votes[i] = vote;
            scored += 1;
            if vote == ys[i] {
                correct += 1;
            }
        }
    }
    if scored == 0 {
        None
    } else {
        Some((correct as f64 / scored as f64, votes))
    }
}

fn project(features: &[f64], indices: &[usize]) -> Vec<f64> {
    indices.iter().map(|&i| features[i]).collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;
    use rand::Rng;

    /// 20-dimensional data where only features 3 and 7 carry signal.
    fn sparse_informative(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let cls: bool = rng.gen();
            let mut x: Vec<f64> = (0..20).map(|_| rng.gen_range(0.0..1.0)).collect();
            let offset: f64 = if cls { 0.35 } else { -0.35 };
            x[3] = (0.5 + offset + rng.gen_range(-0.1..0.1)).clamp(0.0, 1.0);
            x[7] = (0.5 - offset + rng.gen_range(-0.1..0.1)).clamp(0.0, 1.0);
            xs.push(x);
            ys.push(if cls { 1.0 } else { -1.0 });
        }
        (xs, ys)
    }

    fn quick_cfg() -> SubspaceConfig {
        SubspaceConfig {
            candidates: 12,
            features_per_base: 5,
            keep_fraction: 0.25,
            min_keep: 3,
            folds: 3,
            ..SubspaceConfig::default()
        }
    }

    #[test]
    fn learns_sparse_signal() {
        let (xs, ys) = sparse_informative(120, 1);
        let model = RandomSubspaceModel::train(&xs, &ys, &quick_cfg()).unwrap();
        let (tx, ty) = sparse_informative(60, 2);
        let acc = tx
            .iter()
            .zip(&ty)
            .filter(|(x, &y)| model.predict(x) == y)
            .count() as f64
            / ty.len() as f64;
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn survivors_are_sorted_by_validation_accuracy() {
        let (xs, ys) = sparse_informative(100, 3);
        let model = RandomSubspaceModel::train(&xs, &ys, &quick_cfg()).unwrap();
        let accs: Vec<f64> = model
            .bases()
            .iter()
            .map(|b| b.validation_accuracy)
            .collect();
        for pair in accs.windows(2) {
            assert!(pair[0] >= pair[1], "accs {accs:?}");
        }
    }

    #[test]
    fn used_features_is_union_of_bases() {
        let (xs, ys) = sparse_informative(80, 4);
        let model = RandomSubspaceModel::train(&xs, &ys, &quick_cfg()).unwrap();
        let used = model.used_features();
        for b in model.bases() {
            for &fi in &b.feature_indices {
                assert!(used.contains(&fi));
            }
        }
        assert!(used.len() <= 20);
        assert!(!used.is_empty());
    }

    #[test]
    fn keep_fraction_bounds_ensemble_size() {
        let (xs, ys) = sparse_informative(80, 5);
        let cfg = quick_cfg();
        let model = RandomSubspaceModel::train(&xs, &ys, &cfg).unwrap();
        assert!(model.bases().len() >= cfg.min_keep);
        assert!(model.bases().len() <= cfg.candidates);
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = sparse_informative(60, 6);
        let cfg = quick_cfg();
        let a = RandomSubspaceModel::train(&xs, &ys, &cfg).unwrap();
        let b = RandomSubspaceModel::train(&xs, &ys, &cfg).unwrap();
        assert_eq!(a.used_features(), b.used_features());
        assert_eq!(a.fusion().weights(), b.fusion().weights());
    }

    #[test]
    fn rejects_empty_input() {
        let err = RandomSubspaceModel::train(&[], &[], &quick_cfg()).unwrap_err();
        assert!(matches!(err, TrainEnsembleError::BadInput(_)));
    }

    #[test]
    fn rejects_non_pm1_labels() {
        let xs = vec![vec![0.0; 4]; 4];
        let err = RandomSubspaceModel::train(&xs, &[0.0, 1.0, 2.0, 3.0], &quick_cfg()).unwrap_err();
        assert!(matches!(err, TrainEnsembleError::BadInput(_)));
    }

    #[test]
    fn features_per_base_larger_than_dim_is_clamped() {
        let (xs, ys) = sparse_informative(60, 7);
        let cfg = SubspaceConfig {
            features_per_base: 100,
            ..quick_cfg()
        };
        let model = RandomSubspaceModel::train(&xs, &ys, &cfg).unwrap();
        for b in model.bases() {
            assert_eq!(b.feature_indices.len(), 20);
        }
    }

    #[test]
    fn paper_config_matches_section_4_4() {
        let cfg = SubspaceConfig::paper();
        assert_eq!(cfg.candidates, 100);
        assert_eq!(cfg.features_per_base, 12);
        assert_eq!(cfg.keep_fraction, 0.10);
        assert_eq!(cfg.folds, 10);
    }
}
