//! Property tests: Dinic's min-cut equals the brute-force optimum on small
//! random networks, and flow conservation holds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpro_graph::dinic::FlowNetwork;

/// Brute-force minimum cut by enumerating all 2^(n-2) partitions.
fn brute_force_min_cut(net: &FlowNetwork, s: usize, t: usize) -> f64 {
    let n = net.len();
    let free: Vec<usize> = (0..n).filter(|&v| v != s && v != t).collect();
    let mut best = f64::INFINITY;
    for mask in 0..(1u32 << free.len()) {
        let mut side = vec![false; n];
        side[s] = true;
        for (bit, &v) in free.iter().enumerate() {
            side[v] = mask & (1 << bit) != 0;
        }
        best = best.min(net.cut_value(&side));
    }
    best
}

/// Builds a random network with `n` nodes and about `m` edges.
fn random_network(n: usize, m: usize, seed: u64) -> FlowNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = FlowNetwork::new();
    net.add_nodes(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            net.add_edge(u, v, rng.gen_range(0.0..10.0));
        }
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dinic_matches_brute_force(seed in 0u64..500, n in 4usize..9, m in 4usize..20) {
        let net = random_network(n, m, seed);
        let brute = brute_force_min_cut(&net, 0, 1);
        let cut = net.clone().min_cut(0, 1);
        prop_assert!((cut.capacity - brute).abs() < 1e-6,
            "dinic {} vs brute {}", cut.capacity, brute);
        // The extracted partition prices exactly at the max-flow value.
        prop_assert!((net.cut_value(&cut.source_side) - cut.capacity).abs() < 1e-6);
    }

    #[test]
    fn max_flow_is_monotone_in_capacity(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 6;
        let mut lo = FlowNetwork::new();
        let mut hi = FlowNetwork::new();
        lo.add_nodes(n);
        hi.add_nodes(n);
        for _ in 0..12 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v { continue; }
            let cap: f64 = rng.gen_range(0.0..5.0);
            lo.add_edge(u, v, cap);
            hi.add_edge(u, v, cap * 2.0);
        }
        let f_lo = lo.max_flow(0, 1);
        let f_hi = hi.max_flow(0, 1);
        prop_assert!(f_hi >= f_lo - 1e-9);
    }

    #[test]
    fn cut_separates_terminals(seed in 0u64..200) {
        let net = random_network(7, 15, seed);
        let cut = net.min_cut(0, 1);
        prop_assert!(cut.source_side[0]);
        prop_assert!(!cut.source_side[1]);
    }
}
