//! Criterion bench for the Figure-4 characterization path: pricing every
//! module of the generic framework under all three ALU modes. This is the
//! hot inner loop of the Automatic XPro Generator's instancing stage.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xpro_hw::{CellCostModel, ModuleKind, ProcessNode};
use xpro_signal::stats::FeatureKind;

fn modules() -> Vec<ModuleKind> {
    let mut out: Vec<ModuleKind> = FeatureKind::ALL
        .iter()
        .map(|&kind| ModuleKind::Feature {
            kind,
            input_len: 128,
            reuses_var: kind == FeatureKind::Std,
        })
        .collect();
    out.push(ModuleKind::DwtLevel {
        input_len: 128,
        taps: 2,
    });
    out.push(ModuleKind::Svm {
        support_vectors: 60,
        dims: 12,
        rbf: true,
    });
    out.push(ModuleKind::ScoreFusion { bases: 6 });
    out
}

fn bench_characterize(c: &mut Criterion) {
    let model = CellCostModel::default();
    let mods = modules();
    c.bench_function("fig4_characterize_all_modules", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in &mods {
                for cost in model.characterize(black_box(m), ProcessNode::N90) {
                    acc += cost.energy_pj;
                }
            }
            acc
        });
    });
    c.bench_function("fig4_best_mode_selection", |b| {
        b.iter(|| {
            mods.iter()
                .map(|m| model.best_mode(black_box(m), ProcessNode::N90).1.energy_pj)
                .sum::<f64>()
        });
    });
}

criterion_group!(benches, bench_characterize);
criterion_main!(benches);
