//! A fixed-size mergeable quantile sketch for fleet-scale latency
//! telemetry.
//!
//! The executor used to buffer every completed segment's latency in a
//! `Vec<f64>` per node — O(total frames) memory, which collapses exactly
//! where the north star points (100k-node fleets over long horizons).
//! [`QuantileSketch`] replaces those buffers with an HDR-histogram-style
//! log-linear bucket array whose size depends only on the *range* of the
//! data, never on the sample count: peak telemetry memory becomes
//! O(nodes · sketch_size).
//!
//! # Bucket layout
//!
//! Buckets are log-linear: each power-of-two octave in
//! `[2^MIN_EXP, 2^MAX_EXP)` is split into [`SUBBUCKETS`] equal-width
//! linear subbuckets, so a value's bucket index is read straight out of
//! its IEEE-754 bit pattern (exponent bits select the octave, the top
//! mantissa bits select the subbucket) — no `log()` call, no float
//! comparison loop, and the mapping is exact and platform-independent.
//! Two guard buckets catch the tails: index 0 holds everything below
//! [`QuantileSketch::FLOOR`] (including zero and negatives) and the last
//! bucket everything at or above [`QuantileSketch::CAP`].
//!
//! # Error bound
//!
//! For a value `v` in `[FLOOR, CAP)` the bucket containing it spans
//! `[lo, lo + 2^e/SUBBUCKETS)` with `lo ≥ 2^e`, and the sketch reports
//! the bucket midpoint. The absolute error is therefore at most half a
//! bucket width, i.e. the *relative* error is at most
//! `1 / (2 · SUBBUCKETS)` = [`QuantileSketch::REL_ERROR`] ≈ 0.39 %.
//! Reported quantiles are additionally clamped to the exact observed
//! `[min, max]`, and the extreme ranks short-circuit to the exactly
//! tracked extremes, so `quantile(1.0) == max()` and
//! `quantile(0.0) == min()` always, and single-valued data reports
//! exactly that value. Values
//! below `FLOOR` are reported as `FLOOR/2` (absolute error ≤ `FLOOR/2`,
//! i.e. < 0.5 µs for latency-in-seconds data); values at or above `CAP`
//! are reported as the exact observed maximum.
//!
//! # Determinism and mergeability
//!
//! A sketch is a pure function of the *multiset* of inserted values:
//! bucket counts are integers, so insertion order cannot perturb them,
//! and [`QuantileSketch::merge`] adds counts integer-wise — merging is
//! exactly associative, commutative and order-invariant (saturating
//! `u64` addition is associative: `min(a+b, MAX)` composes). Derived
//! statistics ([`QuantileSketch::quantile`], [`QuantileSketch::mean`])
//! walk the buckets in index order, so any partition of the samples
//! across shards digests to bit-identical results — the property the
//! executor's shard-count byte-identity invariant rests on.

/// Number of linear subbuckets per power-of-two octave. 128 subbuckets
/// give a worst-case relative quantile error of 1/256 ≈ 0.39 % — safely
/// inside every tolerance the test suite checks latency percentiles
/// against (the tightest is 1 %).
pub const SUBBUCKETS: usize = 128;

/// log2([`SUBBUCKETS`]): how many top mantissa bits select the subbucket.
const SUB_BITS: u32 = 7;

/// Smallest power-of-two exponent with full relative precision
/// (2⁻²⁰ s ≈ 0.95 µs — far below any modelled segment latency).
const MIN_EXP: i32 = -20;

/// One-past-largest octave: values ≥ 2⁶ = 64 s land in the overflow
/// bucket (the executor's deadlines cap latencies orders of magnitude
/// below this).
const MAX_EXP: i32 = 6;

/// Total logical buckets: one underflow, the log-linear core, one
/// overflow.
const NUM_BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize * SUBBUCKETS + 2;

/// A fixed-size mergeable quantile sketch over non-negative `f64`
/// samples (latencies in seconds), with exact `count`/`min`/`max` and
/// bounded-relative-error quantiles. See the [module docs](self) for the
/// layout and the error bound.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantileSketch {
    /// Logical index of `counts[0]`: only the touched bucket window is
    /// stored, so an idle node costs a few machine words.
    first: usize,
    /// Dense per-bucket sample counts over the touched window.
    counts: Vec<u64>,
    /// Exact number of (finite) recorded samples.
    count: u64,
    /// Exact smallest recorded sample (+∞ when empty).
    min: f64,
    /// Exact largest recorded sample (−∞ when empty).
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// Worst-case relative error of a reported quantile for values in
    /// `[FLOOR, CAP)`: half a subbucket width, `1/(2·SUBBUCKETS)`.
    pub const REL_ERROR: f64 = 1.0 / (2 * SUBBUCKETS) as f64;

    /// Lower edge of the full-precision range (2⁻²⁰ s). Values below it
    /// collapse into one underflow bucket reported as `FLOOR/2`.
    pub const FLOOR: f64 = 9.5367431640625e-7; // 2^-20, exact

    /// Upper edge of the full-precision range (2⁶ = 64 s). Values at or
    /// above it collapse into one overflow bucket reported as the exact
    /// observed maximum.
    pub const CAP: f64 = 64.0;

    /// An empty sketch (no heap allocation until the first sample).
    pub fn new() -> Self {
        QuantileSketch {
            first: 0,
            counts: Vec::new(),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a sketch from a sample iterator — by construction identical
    /// to inserting the samples one by one in any order.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut s = QuantileSketch::new();
        for v in samples {
            s.record(v);
        }
        s
    }

    /// Logical bucket index of a finite sample.
    fn bucket_of(v: f64) -> usize {
        if v < Self::FLOOR {
            return 0; // underflow: zero, negatives, sub-µs values
        }
        if v >= Self::CAP {
            return NUM_BUCKETS - 1;
        }
        // Exponent and top mantissa bits of a positive normal double in
        // [2^MIN_EXP, 2^MAX_EXP) read the octave and subbucket directly.
        let bits = v.to_bits();
        let idx = (bits >> (52 - SUB_BITS)) as i64 - (((1023 + MIN_EXP) as i64) << SUB_BITS);
        debug_assert!((0..(NUM_BUCKETS - 2) as i64).contains(&idx));
        idx as usize + 1
    }

    /// Midpoint of a logical bucket — what quantiles report (before the
    /// exact `[min, max]` clamp).
    fn representative(bucket: usize) -> f64 {
        if bucket == 0 {
            return Self::FLOOR / 2.0;
        }
        if bucket == NUM_BUCKETS - 1 {
            // The exact-max clamp in `quantile` turns the overflow
            // bucket into the exact observed maximum.
            return f64::INFINITY;
        }
        let k = bucket - 1;
        let exp = MIN_EXP + (k / SUBBUCKETS) as i32;
        let sub = k % SUBBUCKETS;
        // 2^exp is exactly representable; the midpoint arithmetic below
        // is a product and sum of exact dyadic rationals — deterministic
        // on every IEEE-754 platform.
        let scale = f64::from_bits(((1023 + exp) as u64) << 52);
        scale * (1.0 + (2 * sub + 1) as f64 / (2 * SUBBUCKETS) as f64)
    }

    /// Records one sample. Non-finite samples are discarded (a NaN must
    /// not poison every percentile), matching the old raw-sample filter.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.count += 1;
        self.bump(Self::bucket_of(v), 1);
    }

    /// Adds `by` to a logical bucket, growing the dense window to reach
    /// it.
    fn bump(&mut self, bucket: usize, by: u64) {
        if self.counts.is_empty() {
            self.first = bucket;
            self.counts.push(0);
        } else if bucket < self.first {
            let grow = self.first - bucket;
            self.counts.splice(0..0, std::iter::repeat_n(0, grow));
            self.first = bucket;
        } else if bucket >= self.first + self.counts.len() {
            self.counts.resize(bucket - self.first + 1, 0);
        }
        let slot = &mut self.counts[bucket - self.first];
        *slot = slot.saturating_add(by);
    }

    /// Merges another sketch into this one: integer bucket sums plus
    /// exact min/max/count folds. Exactly associative, commutative and
    /// order-invariant — the shard-merge property.
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        for (i, &c) in other.counts.iter().enumerate() {
            if c > 0 {
                self.bump(other.first + i, c);
            }
        }
    }

    /// Exact number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The quantile `q ∈ [0, 1]` under the same rank rule the exact
    /// sorted-order statistics used (`rank = ⌈q·n⌉`, clamped to
    /// `[1, n]`), within [`QuantileSketch::REL_ERROR`] of the exact
    /// value and clamped to the exact observed `[min, max]`. 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme order statistics are tracked exactly — don't let a
        // bucket midpoint misreport them.
        if rank == self.count {
            return self.max;
        }
        if rank == 1 {
            return self.min;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Self::representative(self.first + i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of the bucket representatives weighted by count, clamped to
    /// the exact `[min, max]` (0 when empty). Within
    /// [`QuantileSketch::REL_ERROR`] of the exact sample mean for data
    /// inside `[FLOOR, CAP)` (any overflowed sample collapses the mean
    /// to the exact max — conservative), and — unlike a running f64 sum
    /// — invariant under sample order and shard partitioning, because it
    /// folds the fixed bucket array in index order.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                sum += Self::representative(self.first + i) * c as f64;
            }
        }
        (sum / self.count as f64).clamp(self.min, self.max)
    }

    /// Heap + inline bytes this sketch occupies — the telemetry-memory
    /// number the bench sweeps. Bounded by the bucket table
    /// (`NUM_BUCKETS · 8` bytes ≈ 26 KiB) regardless of sample count.
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.counts.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;

    #[test]
    fn empty_sketch_is_all_zero() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn bucket_edges_map_to_distinct_buckets() {
        // Consecutive bucket lower edges across the whole range must map
        // to consecutive indices — the bit extraction agrees with the
        // arithmetic layout.
        let mut last = QuantileSketch::bucket_of(QuantileSketch::FLOOR);
        assert_eq!(last, 1);
        for k in 1..(NUM_BUCKETS - 2) {
            let exp = MIN_EXP + (k / SUBBUCKETS) as i32;
            let sub = k % SUBBUCKETS;
            let lo = f64::from_bits(((1023 + exp) as u64) << 52)
                * (1.0 + sub as f64 / SUBBUCKETS as f64);
            let b = QuantileSketch::bucket_of(lo);
            assert_eq!(b, last + 1, "edge {k} mapped to {b}");
            last = b;
        }
        assert_eq!(
            QuantileSketch::bucket_of(QuantileSketch::CAP),
            NUM_BUCKETS - 1
        );
        assert_eq!(QuantileSketch::bucket_of(0.0), 0);
    }

    #[test]
    fn representative_lies_inside_its_bucket() {
        for bucket in 1..NUM_BUCKETS - 1 {
            let rep = QuantileSketch::representative(bucket);
            assert_eq!(QuantileSketch::bucket_of(rep), bucket);
        }
    }

    #[test]
    fn quantiles_stay_within_the_documented_bound() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        let s = QuantileSketch::from_samples(samples.iter().copied());
        assert_eq!(s.count(), 1000);
        for (q, exact) in [(0.5, 0.5), (0.95, 0.95), (0.99, 0.99)] {
            let got = s.quantile(q);
            let rel = (got - exact).abs() / exact;
            assert!(rel <= QuantileSketch::REL_ERROR, "q{q}: {got} vs {exact}");
        }
        assert_eq!(s.quantile(1.0), 1.0, "max is exact");
        assert_eq!(s.min(), 1e-3, "min is exact");
        let mean = s.mean();
        assert!((mean - 0.5005).abs() / 0.5005 <= QuantileSketch::REL_ERROR);
    }

    #[test]
    fn non_finite_samples_are_discarded() {
        let s = QuantileSketch::from_samples([f64::NAN, 3.0, f64::INFINITY, 1.0]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), 3.0);
        assert!(s.quantile(0.99).is_finite());
    }

    #[test]
    fn merge_equals_bulk_construction() {
        let a: Vec<f64> = (1..=500).map(|i| i as f64 * 2e-4).collect();
        let b: Vec<f64> = (1..=300).map(|i| 0.05 + i as f64 * 1e-3).collect();
        let mut left = QuantileSketch::from_samples(a.iter().copied());
        let right = QuantileSketch::from_samples(b.iter().copied());
        left.merge(&right);
        let all = QuantileSketch::from_samples(a.into_iter().chain(b));
        assert_eq!(left, all, "merge must equal single-pass construction");
    }

    #[test]
    fn out_of_range_values_use_the_guard_buckets() {
        let s = QuantileSketch::from_samples([1e-9, 0.0, 100.0, 70.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.max(), 100.0);
        assert_eq!(s.min(), 0.0);
        // Overflowed values report the exact max; underflowed ones the
        // half-floor midpoint clamped into [min, max].
        assert_eq!(s.quantile(1.0), 100.0);
        assert!(s.quantile(0.25) <= QuantileSketch::FLOOR);
    }

    #[test]
    fn memory_is_bounded_by_the_bucket_table() {
        let mut s = QuantileSketch::new();
        for i in 0..1_000_000u64 {
            s.record((i % 997) as f64 * 1e-4);
        }
        assert_eq!(s.count(), 1_000_000);
        // The dense window never exceeds the bucket table; `Vec`'s
        // amortized growth can at most double the allocation.
        assert!(
            s.mem_bytes() <= 2 * NUM_BUCKETS * 8 + std::mem::size_of::<QuantileSketch>(),
            "sketch grew past the fixed bucket table: {}",
            s.mem_bytes()
        );
    }
}
