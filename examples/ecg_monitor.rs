//! A wearable cardiac-event monitor: the paper's motivating scenario (§1).
//!
//! Simulates a wristband ECG sensor streaming beats to a smartphone
//! aggregator. The cross-end XPro engine classifies each segment as normal
//! or abnormal in real time; the example replays a stream with an
//! arrhythmia episode in the middle, verifies that partitioned execution
//! flags it, and reports what the deployment costs the 40 mAh battery.
//!
//! Run: `cargo run --release --example ecg_monitor`

use rand::rngs::StdRng;
use rand::SeedableRng;
use xpro::data::ecg::{generate_ecg, EcgParams};
use xpro::data::{generate_case_sized, CaseId};
use xpro::ml::SubspaceConfig;
use xpro::prelude::*;

fn main() -> Result<(), XProError> {
    // Train the monitor on the C1 (TwoLeadECG) case.
    let dataset = generate_case_sized(CaseId::C1, 240, 7);
    let cfg = PipelineConfig::builder()
        .subspace(SubspaceConfig {
            candidates: 20,
            keep_fraction: 0.25,
            ..SubspaceConfig::default()
        })
        .build()?;
    let pipeline = XProPipeline::train(&dataset, &cfg)?;
    println!(
        "monitor trained: accuracy {:.1}% on held-out beats",
        pipeline.test_accuracy() * 100.0
    );

    // Deploy cross-end.
    let instance = XProInstance::try_new(
        pipeline.built().clone(),
        SystemConfig::default(),
        pipeline.segment_len(),
    )?;
    let generator = XProGenerator::new(&instance);
    let cut = generator.partition_for(Engine::CrossEnd)?;
    let eval = generator.evaluate_engine(Engine::CrossEnd)?;
    println!(
        "deployed cross-end: {}/{} cells on the wristband, {:.2} uJ and {:.2} ms per beat window",
        cut.sensor_count(),
        instance.num_cells(),
        eval.sensor.total_pj() / 1e6,
        eval.delay.total_s() * 1e3
    );

    // Replay a 30-segment stream: normal rhythm, a 10-segment arrhythmia
    // episode, then recovery.
    let mut rng = StdRng::seed_from_u64(99);
    let mut stream = Vec::new();
    for phase in 0..3 {
        let params = if phase == 1 {
            EcgParams::abnormal()
        } else {
            EcgParams::normal()
        };
        for _ in 0..10 {
            stream.push((generate_ecg(&params, 82, &mut rng), phase == 1));
        }
    }

    let mut alarms = 0;
    let mut hits = 0;
    print!("stream: ");
    for (segment, is_abnormal) in &stream {
        // The sensor and aggregator jointly execute the partitioned engine.
        let label = pipeline.classify_partitioned(segment, &cut);
        let alarm = label < 0.0; // the abnormal class trains as -1
        print!("{}", if alarm { '!' } else { '.' });
        if alarm {
            alarms += 1;
            if *is_abnormal {
                hits += 1;
            }
        }
    }
    println!();
    println!("episode beats flagged: {hits}/10 (total alarms {alarms}/30)");

    // What does continuous monitoring cost?
    let rate = instance.events_per_second();
    println!(
        "at {:.1} events/s the 40 mAh wristband battery lasts {:.0} h cross-end \
         (vs {:.0} h streaming raw beats to the phone)",
        rate,
        eval.sensor_battery_hours,
        generator
            .evaluate_engine(Engine::InAggregator)?
            .sensor_battery_hours
    );
    Ok(())
}
