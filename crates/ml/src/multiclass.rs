//! Multi-class extension of the generic classification framework.
//!
//! Paper §5.7: "If multi-classification is needed, we can simply add more
//! base classifiers that extend only the topology of generic classification.
//! The rest of the proposed methodology can be applied directly."
//!
//! This module implements that extension as one-vs-rest: one random-subspace
//! ensemble per class, sharing the same feature vector. Prediction takes the
//! class whose ensemble produces the largest fused score. The XPro core maps
//! the union of all ensembles' cells onto one functional-cell graph.

use crate::subspace::{RandomSubspaceModel, SubspaceConfig, TrainEnsembleError};
use std::collections::BTreeSet;

/// A one-vs-rest multi-class model built from binary random-subspace
/// ensembles.
///
/// # Examples
///
/// ```
/// use xpro_ml::multiclass::OneVsRestModel;
/// use xpro_ml::SubspaceConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Three classes separated along feature 0.
/// let xs: Vec<Vec<f64>> = (0..90)
///     .map(|i| vec![(i % 3) as f64 * 0.4 + 0.1, 0.5])
///     .collect();
/// let ys: Vec<u32> = (0..90).map(|i| (i % 3) as u32).collect();
/// let cfg = SubspaceConfig { candidates: 6, features_per_base: 2, ..Default::default() };
/// let model = OneVsRestModel::train(&xs, &ys, &cfg)?;
/// assert_eq!(model.predict(&[0.12, 0.5]), 0);
/// assert_eq!(model.predict(&[0.9, 0.5]), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct OneVsRestModel {
    classes: Vec<u32>,
    models: Vec<RandomSubspaceModel>,
}

/// Error returned by [`OneVsRestModel::train`].
#[derive(Clone, Debug, PartialEq)]
pub enum TrainMulticlassError {
    /// Fewer than two distinct classes in the labels.
    TooFewClasses,
    /// Label/feature count mismatch or empty input.
    BadInput,
    /// A per-class ensemble failed to train.
    Ensemble(u32, TrainEnsembleError),
}

impl std::fmt::Display for TrainMulticlassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainMulticlassError::TooFewClasses => {
                f.write_str("multi-class training needs at least two classes")
            }
            TrainMulticlassError::BadInput => f.write_str("empty input or label count mismatch"),
            TrainMulticlassError::Ensemble(class, e) => {
                write!(f, "ensemble for class {class} failed: {e}")
            }
        }
    }
}

impl std::error::Error for TrainMulticlassError {}

impl OneVsRestModel {
    /// Trains one binary ensemble per distinct class label.
    ///
    /// # Errors
    ///
    /// Returns [`TrainMulticlassError`] on degenerate input or when any
    /// per-class ensemble fails.
    pub fn train(
        xs: &[Vec<f64>],
        ys: &[u32],
        cfg: &SubspaceConfig,
    ) -> Result<Self, TrainMulticlassError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(TrainMulticlassError::BadInput);
        }
        let classes: Vec<u32> = {
            let set: BTreeSet<u32> = ys.iter().copied().collect();
            set.into_iter().collect()
        };
        if classes.len() < 2 {
            return Err(TrainMulticlassError::TooFewClasses);
        }
        let mut models = Vec::with_capacity(classes.len());
        for (ci, &class) in classes.iter().enumerate() {
            let binary: Vec<f64> = ys
                .iter()
                .map(|&y| if y == class { 1.0 } else { -1.0 })
                .collect();
            // Decorrelate per-class subset draws.
            let cfg = SubspaceConfig {
                seed: cfg.seed.wrapping_add(ci as u64 * 0x9e37),
                ..cfg.clone()
            };
            let model = RandomSubspaceModel::train(xs, &binary, &cfg)
                .map_err(|e| TrainMulticlassError::Ensemble(class, e))?;
            models.push(model);
        }
        Ok(OneVsRestModel { classes, models })
    }

    /// Predicts the class with the highest fused one-vs-rest score.
    pub fn predict(&self, features: &[f64]) -> u32 {
        let (best, _) = self
            .classes
            .iter()
            .zip(&self.models)
            .map(|(&c, m)| (c, m.score(features)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"))
            .expect("at least two classes");
        best
    }

    /// Per-class fused scores, in [`OneVsRestModel::classes`] order.
    pub fn scores(&self, features: &[f64]) -> Vec<f64> {
        self.models.iter().map(|m| m.score(features)).collect()
    }

    /// The distinct class labels, ascending.
    pub fn classes(&self) -> &[u32] {
        &self.classes
    }

    /// The per-class binary ensembles, aligned with
    /// [`OneVsRestModel::classes`].
    pub fn models(&self) -> &[RandomSubspaceModel] {
        &self.models
    }

    /// Union of feature indices used by any class's ensemble — what decides
    /// the shared functional-cell topology in the XPro core.
    pub fn used_features(&self) -> BTreeSet<usize> {
        self.models
            .iter()
            .flat_map(super::subspace::RandomSubspaceModel::used_features)
            .collect()
    }

    /// Total base-classifier count across classes (the added topology of
    /// §5.7).
    pub fn total_bases(&self) -> usize {
        self.models.iter().map(|m| m.bases().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn three_blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: [(f64, f64); 3] = [(0.2, 0.2), (0.8, 0.2), (0.5, 0.85)];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let class = i % 3;
            let (cx, cy) = centers[class];
            xs.push(vec![
                (cx + rng.gen_range(-0.1..0.1)).clamp(0.0, 1.0),
                (cy + rng.gen_range(-0.1..0.1)).clamp(0.0, 1.0),
                rng.gen_range(0.0..1.0),
            ]);
            ys.push(class as u32);
        }
        (xs, ys)
    }

    fn quick_cfg() -> SubspaceConfig {
        SubspaceConfig {
            candidates: 8,
            features_per_base: 2,
            keep_fraction: 0.3,
            min_keep: 3,
            folds: 2,
            ..SubspaceConfig::default()
        }
    }

    #[test]
    fn separates_three_blobs() {
        let (xs, ys) = three_blobs(150, 1);
        let model = OneVsRestModel::train(&xs, &ys, &quick_cfg()).unwrap();
        let (tx, ty) = three_blobs(60, 2);
        let correct = tx
            .iter()
            .zip(&ty)
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert!(correct as f64 / ty.len() as f64 > 0.85, "{correct}/60");
    }

    #[test]
    fn classes_are_sorted_and_complete() {
        let (xs, ys) = three_blobs(90, 3);
        let model = OneVsRestModel::train(&xs, &ys, &quick_cfg()).unwrap();
        assert_eq!(model.classes(), &[0, 1, 2]);
        assert_eq!(model.models().len(), 3);
        assert_eq!(model.scores(&xs[0]).len(), 3);
    }

    #[test]
    fn topology_grows_with_classes() {
        // §5.7: multi-classification "adds more base classifiers".
        let (xs3, ys3) = three_blobs(90, 4);
        let binary_ys: Vec<u32> = ys3.iter().map(|&y| y.min(1)).collect();
        let multi = OneVsRestModel::train(&xs3, &ys3, &quick_cfg()).unwrap();
        let binary = OneVsRestModel::train(&xs3, &binary_ys, &quick_cfg()).unwrap();
        assert!(multi.total_bases() > binary.total_bases());
    }

    #[test]
    fn rejects_single_class() {
        let xs = vec![vec![0.0]; 4];
        let err = OneVsRestModel::train(&xs, &[7, 7, 7, 7], &quick_cfg()).unwrap_err();
        assert_eq!(err, TrainMulticlassError::TooFewClasses);
    }

    #[test]
    fn rejects_mismatched_labels() {
        let xs = vec![vec![0.0]; 4];
        let err = OneVsRestModel::train(&xs, &[0, 1], &quick_cfg()).unwrap_err();
        assert_eq!(err, TrainMulticlassError::BadInput);
    }
}
