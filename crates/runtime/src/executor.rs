//! The streaming cross-end executor: a fleet of sensor nodes running one
//! partitioned engine against a shared lossy channel and one aggregator.
//!
//! Each node produces a segment every `segment_len / sampling_hz` seconds.
//! A segment flows through three serialized phases, priced exactly as the
//! analytic evaluator ([`xpro_core::partition::evaluate`]) prices them:
//!
//! 1. **front end** — the node's in-sensor cells (a per-node resource;
//!    consecutive segments of one node queue on it);
//! 2. **wireless** — every cross-end producer port becomes one frame
//!    (transmitted once per the grouped-cells rule), plus the one-sample
//!    result frame when the classifier output is produced on the sensor.
//!    Frames from all nodes contend FIFO for the single half-duplex
//!    channel; each attempt may be lost, retransmissions back off
//!    exponentially and are bounded, and a segment that cannot finish by
//!    its deadline is skipped — the stream degrades gracefully instead of
//!    stalling;
//! 3. **back end** — the node's in-aggregator cells on the shared serial
//!    CPU. Segments arriving while the CPU is busy are served back-to-back
//!    as one batch.
//!
//! With a lossless link every completed segment therefore spends exactly
//! the analytic energy and (uncontended) the analytic delay; loss adds
//! retransmission energy and latency on top, which is the point of the
//! fault injection.

use crate::config::RuntimeConfig;
use crate::link::LossyLink;
use crate::metrics::MetricsRegistry;
use crate::report::{AggregatorReport, LatencyStats, NodeReport, RunReport};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use xpro_core::instance::XProInstance;
use xpro_core::layout::BITS_PER_SAMPLE;
use xpro_core::partition::Partition;
use xpro_core::XProError;
use xpro_wireless::Frame;

/// One planned wireless transfer of a segment.
#[derive(Clone, Copy, Debug)]
struct FramePlan {
    /// Channel occupancy per attempt.
    airtime_s: f64,
    /// Sensor radio energy per attempt (tx when uplink, rx when downlink).
    sensor_pj: f64,
    /// Aggregator radio energy per attempt.
    agg_pj: f64,
}

/// The per-segment execution plan, identical for every segment and node:
/// the streaming equivalent of one `evaluate` call.
#[derive(Clone, Debug)]
struct SegmentPlan {
    front_s: f64,
    back_s: f64,
    sensor_compute_pj: f64,
    agg_compute_pj: f64,
    frames: Vec<FramePlan>,
}

impl SegmentPlan {
    fn build(instance: &XProInstance, partition: &Partition) -> Self {
        let graph = &instance.built().graph;
        let radio = &instance.config().radio;
        let mut plan = SegmentPlan {
            front_s: 0.0,
            back_s: 0.0,
            sensor_compute_pj: 0.0,
            agg_compute_pj: 0.0,
            frames: Vec::new(),
        };
        for c in 0..instance.num_cells() {
            if partition.in_sensor[c] {
                plan.sensor_compute_pj += instance.sensor_cost(c).energy_pj;
                plan.front_s += instance.sensor_time_s(c);
            } else {
                plan.agg_compute_pj += instance.aggregator_energy_pj(c);
                plan.back_s += instance.aggregator_time_s(c);
            }
        }
        // Cross-end transfers: once per producer port with a cross-end
        // consumer (the grouped-cells rule), exactly as `evaluate`.
        let side_of = |producer: Option<usize>| -> bool {
            match producer {
                None => true, // raw data originates at the sensor
                Some(c) => partition.in_sensor[c],
            }
        };
        let mut push = |samples: u64, producer_sensor: bool| {
            let frame = Frame::for_samples(samples, BITS_PER_SAMPLE);
            let (sensor_pj, agg_pj) = if producer_sensor {
                (radio.tx_frame_pj(frame), radio.rx_frame_pj(frame))
            } else {
                (radio.rx_frame_pj(frame), radio.tx_frame_pj(frame))
            };
            plan.frames.push(FramePlan {
                airtime_s: radio.frame_airtime_s(frame),
                sensor_pj,
                agg_pj,
            });
        };
        for port in graph.active_ports() {
            let producer_sensor = side_of(port.producer);
            let any_cross = graph
                .consumers_of(port)
                .iter()
                .any(|&c| partition.in_sensor[c] != producer_sensor);
            if !any_cross {
                continue;
            }
            let samples = match port.producer {
                None => instance.segment_len() as u64,
                Some(_) => graph.port_samples(port),
            };
            push(samples, producer_sensor);
        }
        let result = graph.result_cell();
        if partition.in_sensor[result] {
            push(1, true);
        }
        plan
    }
}

#[derive(Clone, Copy, Debug)]
enum EventKind {
    /// A new segment at a node.
    Arrival { node: usize },
    /// A frame transmission attempt for a segment.
    FrameTx {
        node: usize,
        arrival_s: f64,
        frame: usize,
        attempt: u32,
    },
    /// The segment's back-end work is ready for the aggregator CPU.
    AggJob { node: usize, arrival_s: f64 },
}

#[derive(Clone, Copy, Debug)]
struct Event {
    time_s: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // BinaryHeap is a max-heap: invert so the earliest event pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time_s
            .total_cmp(&self.time_s)
            .then(other.seq.cmp(&self.seq))
    }
}

#[derive(Clone, Debug, Default)]
struct NodeState {
    offered: u64,
    completed: u64,
    dropped: u64,
    timed_out: u64,
    frame_attempts: u64,
    frame_drops: u64,
    retries: u64,
    compute_pj: f64,
    wireless_pj: f64,
    sensor_free_s: f64,
    latencies_s: Vec<f64>,
}

/// A configured streaming run over one instance and partition.
#[derive(Clone, Debug)]
pub struct Executor<'a> {
    instance: &'a XProInstance,
    partition: &'a Partition,
    config: RuntimeConfig,
}

impl<'a> Executor<'a> {
    /// Binds an instance, a partition and a runtime configuration.
    ///
    /// # Errors
    ///
    /// Returns [`XProError::Config`] when the partition size does not match
    /// the instance's cell count.
    pub fn new(
        instance: &'a XProInstance,
        partition: &'a Partition,
        config: RuntimeConfig,
    ) -> Result<Self, XProError> {
        if partition.in_sensor.len() != instance.num_cells() {
            return Err(XProError::config(format!(
                "partition covers {} cells but the instance has {}",
                partition.in_sensor.len(),
                instance.num_cells()
            )));
        }
        Ok(Executor {
            instance,
            partition,
            config,
        })
    }

    /// Runs the fleet to completion and digests the result.
    ///
    /// The simulation is in virtual time: arrivals are generated for
    /// `[0, duration_s)` and every in-flight segment is drained, so the
    /// run always terminates — loss and overload surface as skipped
    /// segments and latency, never as a stall.
    pub fn run(&self) -> RunReport {
        let cfg = &self.config;
        let plan = SegmentPlan::build(self.instance, self.partition);
        let period_s = self.instance.segment_len() as f64 / self.instance.config().sampling_hz;

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut BinaryHeap<Event>, time_s: f64, kind: EventKind| {
            heap.push(Event {
                time_s,
                seq: {
                    seq += 1;
                    seq
                },
                kind,
            });
        };

        for node in 0..cfg.nodes {
            let offset = if cfg.stagger {
                period_s * node as f64 / cfg.nodes as f64
            } else {
                0.0
            };
            let mut t = offset;
            while t < cfg.duration_s {
                push(&mut heap, t, EventKind::Arrival { node });
                t += period_s;
            }
        }

        let mut nodes: Vec<NodeState> = vec![NodeState::default(); cfg.nodes];
        let mut link = LossyLink::new(cfg.drop_rate, cfg.seed);
        let mut metrics = MetricsRegistry::new();
        let mut cpu_free_s = 0.0f64;
        let mut cpu_busy_s = 0.0f64;
        let mut agg_pj = 0.0f64;
        let mut batches = 0u64;
        let mut batch_len = 0u64;
        let mut max_batch = 0u64;

        while let Some(ev) = heap.pop() {
            match ev.kind {
                EventKind::Arrival { node } => {
                    let st = &mut nodes[node];
                    st.offered += 1;
                    metrics.inc("segments_offered", 1);
                    // The node's front end is serial across its own
                    // segments.
                    let start = ev.time_s.max(st.sensor_free_s);
                    let done = start + plan.front_s;
                    st.sensor_free_s = done;
                    st.compute_pj += plan.sensor_compute_pj;
                    let next = if plan.frames.is_empty() {
                        EventKind::AggJob {
                            node,
                            arrival_s: ev.time_s,
                        }
                    } else {
                        EventKind::FrameTx {
                            node,
                            arrival_s: ev.time_s,
                            frame: 0,
                            attempt: 0,
                        }
                    };
                    push(&mut heap, done, next);
                }
                EventKind::FrameTx {
                    node,
                    arrival_s,
                    frame,
                    attempt,
                } => {
                    let deadline = arrival_s + cfg.timeout_s;
                    if ev.time_s > deadline {
                        nodes[node].timed_out += 1;
                        metrics.inc("segments_timed_out", 1);
                        continue;
                    }
                    let fp = plan.frames[frame];
                    let sent = link.transmit(ev.time_s, fp.airtime_s);
                    let st = &mut nodes[node];
                    st.frame_attempts += 1;
                    // The radio energy is spent whether or not the frame
                    // survives the channel: the receiver listens through
                    // corrupted frames too.
                    st.wireless_pj += fp.sensor_pj;
                    agg_pj += fp.agg_pj;
                    metrics.inc("frame_attempts", 1);
                    if sent.delivered {
                        let next = if frame + 1 < plan.frames.len() {
                            EventKind::FrameTx {
                                node,
                                arrival_s,
                                frame: frame + 1,
                                attempt: 0,
                            }
                        } else {
                            EventKind::AggJob { node, arrival_s }
                        };
                        push(&mut heap, sent.finish_s, next);
                    } else {
                        st.frame_drops += 1;
                        metrics.inc("frame_drops", 1);
                        if attempt >= cfg.max_retries {
                            st.dropped += 1;
                            metrics.inc("segments_dropped", 1);
                            continue;
                        }
                        let retry_at =
                            sent.finish_s + cfg.backoff_base_s * f64::from(1u32 << attempt.min(20));
                        if retry_at > deadline {
                            st.timed_out += 1;
                            metrics.inc("segments_timed_out", 1);
                            continue;
                        }
                        st.retries += 1;
                        metrics.inc("retries", 1);
                        push(
                            &mut heap,
                            retry_at,
                            EventKind::FrameTx {
                                node,
                                arrival_s,
                                frame,
                                attempt: attempt + 1,
                            },
                        );
                    }
                }
                EventKind::AggJob { node, arrival_s } => {
                    let idle = ev.time_s >= cpu_free_s;
                    let wake = if idle {
                        if batch_len > 0 {
                            metrics.observe("batch_size", batch_len as f64);
                        }
                        max_batch = max_batch.max(batch_len);
                        batches += 1;
                        batch_len = 1;
                        cfg.batch_wake_s
                    } else {
                        batch_len += 1;
                        0.0
                    };
                    let start = ev.time_s.max(cpu_free_s);
                    let done = start + wake + plan.back_s;
                    cpu_busy_s += done - start;
                    cpu_free_s = done;
                    agg_pj += plan.agg_compute_pj;
                    let st = &mut nodes[node];
                    st.completed += 1;
                    let latency = done - arrival_s;
                    st.latencies_s.push(latency);
                    metrics.inc("segments_completed", 1);
                    metrics.observe("latency_s", latency);
                }
            }
        }
        max_batch = max_batch.max(batch_len);
        if batch_len > 0 {
            metrics.observe("batch_size", batch_len as f64);
        }

        self.digest(
            nodes, &link, metrics, cpu_busy_s, agg_pj, batches, max_batch,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn digest(
        &self,
        nodes: Vec<NodeState>,
        link: &LossyLink,
        mut metrics: MetricsRegistry,
        cpu_busy_s: f64,
        agg_pj: f64,
        batches: u64,
        max_batch: u64,
    ) -> RunReport {
        let cfg = &self.config;
        let sys = self.instance.config();
        let duration = cfg.duration_s;
        let channel_utilization = link.busy_s() / duration;
        metrics.set_gauge("channel_utilization", channel_utilization);
        metrics.set_gauge("aggregator_utilization", cpu_busy_s / duration);

        let node_reports: Vec<NodeReport> = nodes
            .into_iter()
            .enumerate()
            .map(|(i, st)| {
                let total_pj = st.compute_pj + st.wireless_pj;
                let avg_power_w = total_pj * 1e-12 / duration;
                let battery = &sys.sensor_battery;
                NodeReport {
                    node: i,
                    segments_offered: st.offered,
                    segments_completed: st.completed,
                    segments_dropped: st.dropped,
                    segments_timed_out: st.timed_out,
                    frame_attempts: st.frame_attempts,
                    frame_drops: st.frame_drops,
                    retries: st.retries,
                    throughput_hz: st.completed as f64 / duration,
                    latency: LatencyStats::from_samples(st.latencies_s),
                    compute_pj: st.compute_pj,
                    wireless_pj: st.wireless_pj,
                    battery_hours: battery.runtime_hours(avg_power_w),
                    battery_drawdown: total_pj * 1e-12 / battery.energy_j(),
                }
            })
            .collect();

        let agg_power_w = agg_pj * 1e-12 / duration;
        let aggregator = AggregatorReport {
            batches,
            max_batch,
            busy_s: cpu_busy_s,
            utilization: cpu_busy_s / duration,
            energy_pj: agg_pj,
            battery_hours: sys.aggregator_battery.runtime_hours(agg_power_w),
        };

        RunReport {
            duration_s: duration,
            nodes: node_reports,
            aggregator,
            channel_busy_s: link.busy_s(),
            channel_utilization,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;
    use crate::testutil::tiny_instance;
    use xpro_core::generator::{Engine, XProGenerator};
    use xpro_core::partition::evaluate;

    fn cross_end(inst: &XProInstance) -> Partition {
        XProGenerator::new(inst)
            .partition_for(Engine::CrossEnd)
            .unwrap()
    }

    #[test]
    fn rejects_mismatched_partition() {
        let inst = tiny_instance(0);
        let p = Partition::all_sensor(inst.num_cells() + 1);
        let err = Executor::new(&inst, &p, RuntimeConfig::default()).unwrap_err();
        assert!(matches!(err, XProError::Config(_)));
    }

    #[test]
    fn zero_loss_run_matches_analytic_evaluator() {
        let inst = tiny_instance(1);
        for p in [
            cross_end(&inst),
            Partition::all_sensor(inst.num_cells()),
            Partition::all_aggregator(inst.num_cells()),
        ] {
            let analytic = evaluate(&inst, &p);
            // One uncontended node: per-segment latency and energy must
            // reproduce the analytic serialized model within 1 %.
            let cfg = RuntimeConfig::builder()
                .nodes(1)
                .duration_s(1.0)
                .drop_rate(0.0)
                .build()
                .unwrap();
            let report = Executor::new(&inst, &p, cfg).unwrap().run();
            let node = &report.nodes[0];
            assert_eq!(node.segments_offered, node.segments_completed);
            assert_eq!(
                node.retries + node.segments_dropped + node.segments_timed_out,
                0
            );
            let energy_per_event = node.total_pj() / node.segments_completed as f64;
            let rel_e =
                (energy_per_event - analytic.sensor.total_pj()).abs() / analytic.sensor.total_pj();
            assert!(rel_e < 0.01, "energy off by {rel_e}");
            let rel_d =
                (node.latency.p50_s - analytic.delay.total_s()).abs() / analytic.delay.total_s();
            assert!(rel_d < 0.01, "delay off by {rel_d}");
        }
    }

    #[test]
    fn retries_grow_monotonically_with_drop_rate() {
        let inst = tiny_instance(2);
        let p = cross_end(&inst);
        let mut last = 0u64;
        for (i, rate) in [0.0, 0.05, 0.15, 0.3].into_iter().enumerate() {
            let cfg = RuntimeConfig::builder()
                .nodes(4)
                .duration_s(2.0)
                .drop_rate(rate)
                .seed(1234)
                .build()
                .unwrap();
            let retries = Executor::new(&inst, &p, cfg).unwrap().run().total_retries();
            assert!(
                retries >= last,
                "rate {rate}: retries {retries} < previous {last} (step {i})"
            );
            last = retries;
        }
        assert!(last > 0, "the sweep never retried");
    }

    #[test]
    fn heavy_loss_degrades_gracefully() {
        let inst = tiny_instance(3);
        let p = Partition::all_aggregator(inst.num_cells());
        let cfg = RuntimeConfig::builder()
            .nodes(4)
            .duration_s(2.0)
            .drop_rate(0.9)
            .max_retries(2)
            .timeout_s(0.05)
            .seed(7)
            .build()
            .unwrap();
        let report = Executor::new(&inst, &p, cfg).unwrap().run();
        let offered: u64 = report.nodes.iter().map(|n| n.segments_offered).sum();
        let accounted = report.total_completed() + report.total_lost();
        // Every offered segment terminates — completed or skipped, never
        // stuck.
        assert_eq!(offered, accounted);
        assert!(report.total_lost() > 0, "no loss at 90 % drop rate");
    }

    #[test]
    fn equal_seeds_reproduce_the_run() {
        let inst = tiny_instance(4);
        let p = cross_end(&inst);
        let cfg = RuntimeConfig::builder()
            .nodes(3)
            .duration_s(1.0)
            .drop_rate(0.2)
            .seed(99)
            .build()
            .unwrap();
        let a = Executor::new(&inst, &p, cfg.clone()).unwrap().run();
        let b = Executor::new(&inst, &p, cfg).unwrap().run();
        assert_eq!(a, b);
    }

    #[test]
    fn fleet_report_is_consistent() {
        let inst = tiny_instance(5);
        let p = cross_end(&inst);
        let cfg = RuntimeConfig::builder()
            .nodes(4)
            .duration_s(2.0)
            .drop_rate(0.05)
            .seed(5)
            .build()
            .unwrap();
        let report = Executor::new(&inst, &p, cfg).unwrap().run();
        assert_eq!(report.nodes.len(), 4);
        assert!(report.total_completed() > 0);
        for n in &report.nodes {
            assert!(n.segments_offered > 0);
            assert!(n.battery_hours > 0.0);
            assert!(n.battery_drawdown >= 0.0);
            assert!(n.latency.p50_s <= n.latency.p99_s + 1e-12);
        }
        assert_eq!(
            report.metrics.counter("segments_completed"),
            report.total_completed()
        );
        assert!(report.channel_utilization >= 0.0);
        assert!(!report.render().is_empty());
        assert!(report.to_json().starts_with('{'));
    }
}
