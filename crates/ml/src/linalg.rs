//! Minimal dense linear algebra: just enough to solve the least-squares
//! weighted-voting problem of the score-fusion stage (paper §4.4).

/// A dense row-major matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Computes `Aᵀ·A` (a `cols × cols` Gram matrix).
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut acc = 0.0;
                for r in 0..self.rows {
                    acc += self.get(r, i) * self.get(r, j);
                }
                out.set(i, j, acc);
                out.set(j, i, acc);
            }
        }
        out
    }

    /// Computes `Aᵀ·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows`.
    pub fn transpose_mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vector length mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            for (c, slot) in out.iter_mut().enumerate() {
                *slot += self.get(r, c) * vr;
            }
        }
        out
    }

    /// Computes `A·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, &vc) in v.iter().enumerate() {
                acc += self.get(r, c) * vc;
            }
            *slot = acc;
        }
        out
    }
}

/// Error returned when a linear system cannot be solved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SingularMatrixError;

impl std::fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrixError {}

/// Solves the square system `A·x = b` by Gaussian elimination with partial
/// pivoting.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] when a pivot falls below `1e-12`.
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.rows()`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let n = a.rows();
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivoting.
        let mut pivot_row = col;
        let mut pivot_mag = m.get(col, col).abs();
        for r in (col + 1)..n {
            let mag = m.get(r, col).abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if pivot_mag < 1e-12 {
            return Err(SingularMatrixError);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m.get(col, c);
                m.set(col, c, m.get(pivot_row, c));
                m.set(pivot_row, c, tmp);
            }
            rhs.swap(col, pivot_row);
        }
        // Eliminate below.
        let pivot = m.get(col, col);
        for r in (col + 1)..n {
            let factor = m.get(r, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                m.set(r, c, m.get(r, c) - factor * m.get(col, c));
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = rhs[r];
        for (c, &xc) in x.iter().enumerate().skip(r + 1) {
            acc -= m.get(r, c) * xc;
        }
        x[r] = acc / m.get(r, r);
    }
    Ok(x)
}

/// Solves the (possibly rank-deficient) least-squares problem
/// `min ‖A·x − b‖²` via ridge-regularized normal equations
/// `(AᵀA + λI)·x = Aᵀb`.
///
/// The small ridge `lambda` both regularizes near-duplicate base classifiers
/// (common in random-subspace ensembles) and guarantees solvability.
///
/// # Panics
///
/// Panics if `b.len() != a.rows()` or `lambda < 0`.
pub fn least_squares(a: &Matrix, b: &[f64], lambda: f64) -> Vec<f64> {
    assert!(lambda >= 0.0, "ridge parameter must be non-negative");
    let mut gram = a.gram();
    let n = gram.rows();
    // A strictly positive floor keeps the system non-singular even for λ = 0
    // callers (the floor is far below any meaningful score scale).
    let ridge = lambda.max(1e-9);
    for i in 0..n {
        gram.set(i, i, gram.get(i, i) + ridge);
    }
    let rhs = a.transpose_mul_vec(b);
    solve(&gram, &rhs).expect("ridge-regularized Gram matrix is positive definite")
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;

    #[test]
    fn solves_identity() {
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let x = solve(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(SingularMatrixError));
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // Overdetermined but consistent: y = 2*x1 - x2.
        let a = Matrix::from_rows(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 1.0]);
        let b = vec![2.0, -1.0, 1.0, 3.0];
        let x = least_squares(&a, &b, 0.0);
        assert!((x[0] - 2.0).abs() < 1e-4);
        assert!((x[1] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn least_squares_with_duplicate_columns_is_stable() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let x = least_squares(&a, &[2.0, 4.0, 6.0], 1e-6);
        // Fitted values should reproduce b even though the split between the
        // two identical columns is arbitrary.
        let fitted = a.mul_vec(&x);
        for (f, b) in fitted.iter().zip([2.0, 4.0, 6.0]) {
            assert!((f - b).abs() < 1e-3);
        }
    }

    #[test]
    fn gram_is_symmetric() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gram();
        assert_eq!(g.get(0, 1), g.get(1, 0));
        assert_eq!(g.get(0, 0), 1.0 + 9.0 + 25.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn solve_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        let _ = solve(&a, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = Matrix::zeros(0, 3);
    }
}
