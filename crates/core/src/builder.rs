//! Builds the functional-cell graph of an XPro instance from a trained
//! random-subspace classifier.
//!
//! "The number of functional cells is decided by the feature set and random
//! subspace training" (paper §2.2): only features consumed by a surviving
//! base classifier spawn cells, the DWT chain extends just deep enough to
//! feed them, and each surviving base spawns one SVM cell sized by its
//! support-vector count. Cell-level reuse (design rule 3, §3.1.3) is applied
//! where Std can reuse a Var cell on the same domain.

use crate::cellgraph::{Cell, CellGraph, CellId, PortRef};
use crate::layout::{Domain, FeatureLayout, DWT_INPUT_LEN, DWT_LEVELS};
use std::collections::BTreeMap;
use xpro_hw::ModuleKind;
use xpro_ml::kernel::Kernel;
use xpro_ml::RandomSubspaceModel;
use xpro_signal::stats::FeatureKind;

/// Options controlling graph construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BuildOptions {
    /// Apply cell-level reuse (Std reuses Var). Disable only for the
    /// ablation study.
    pub cell_reuse: bool,
    /// DWT filter taps (2 for the Haar filters the sensor implements).
    pub dwt_taps: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            cell_reuse: true,
            dwt_taps: 2,
        }
    }
}

/// The constructed graph plus the mapping from cells back to feature-vector
/// indices (needed to wire SVM inputs during functional execution).
#[derive(Clone, Debug)]
pub struct BuiltGraph {
    /// The dataflow graph.
    pub graph: CellGraph,
    /// For every feature index used by the model, the producing cell.
    pub feature_cells: BTreeMap<usize, CellId>,
    /// One SVM cell per surviving base, in base order.
    pub svm_cells: Vec<CellId>,
    /// The score-fusion cell.
    pub fusion_cell: CellId,
}

/// Builds the cell graph for a trained model.
///
/// # Panics
///
/// Panics if the model was not trained on the [`FeatureLayout::DIM`]-sized
/// feature vector of the generic framework, or uses no features.
pub fn build_cell_graph(model: &RandomSubspaceModel, options: &BuildOptions) -> BuiltGraph {
    assert_eq!(
        model.dim(),
        FeatureLayout::DIM,
        "model dimensionality does not match the generic framework layout"
    );
    let used = model.used_features();
    assert!(!used.is_empty(), "model uses no features");

    let mut graph = CellGraph::new(DWT_INPUT_LEN as u64);

    // Which domains carry at least one used feature?
    let mut used_by_domain: BTreeMap<usize, Vec<FeatureKind>> = BTreeMap::new();
    for &fi in &used {
        let (domain, kind) = FeatureLayout::decode(fi);
        used_by_domain.entry(domain.index()).or_default().push(kind);
    }

    // Deepest DWT level required: detail level l needs levels 1..=l; the
    // approximation domain needs the full chain.
    let deepest = used_by_domain
        .keys()
        .map(|&di| match Domain::all()[di] {
            Domain::Time => 0,
            Domain::Detail(l) => l as usize,
            Domain::Approx => DWT_LEVELS,
        })
        .max()
        .expect("at least one used feature");

    // DWT chain. Port 0 = approximation, port 1 = detail.
    let mut dwt_cells: Vec<CellId> = Vec::new();
    let mut upstream = PortRef::RAW;
    for level in 1..=deepest {
        let input_len = DWT_INPUT_LEN >> (level - 1);
        let id = graph.add_cell(Cell {
            module: ModuleKind::DwtLevel {
                input_len,
                taps: options.dwt_taps,
            },
            domain: Domain::Detail(level as u8),
            output_samples: vec![(input_len / 2) as u64, (input_len / 2) as u64],
            inputs: vec![upstream],
            label: format!("DWT-L{level}"),
        });
        dwt_cells.push(id);
        upstream = PortRef {
            producer: Some(id),
            port: 0,
        };
    }

    // Source port of each domain's window.
    let domain_source = |domain: Domain| -> PortRef {
        match domain {
            Domain::Time => PortRef::RAW,
            Domain::Detail(l) => PortRef {
                producer: Some(dwt_cells[l as usize - 1]),
                port: 1,
            },
            Domain::Approx => PortRef {
                producer: Some(dwt_cells[DWT_LEVELS - 1]),
                port: 0,
            },
        }
    };

    // Feature cells, domain by domain. Var cells are added before Std so the
    // reuse edge can point backwards.
    let mut feature_cells: BTreeMap<usize, CellId> = BTreeMap::new();
    for (&di, kinds) in &used_by_domain {
        let domain = Domain::all()[di];
        let source = domain_source(domain);
        let window = domain.window_len();
        let mut kinds = kinds.clone();
        kinds.sort(); // FeatureKind order puts Var before Std
        let has_var = kinds.contains(&FeatureKind::Var);
        for kind in kinds {
            let reuses_var = options.cell_reuse && kind == FeatureKind::Std && has_var;
            let inputs = if reuses_var {
                let var_id = feature_cells[&FeatureLayout::index(domain, FeatureKind::Var)];
                vec![PortRef::cell(var_id)]
            } else {
                vec![source]
            };
            let id = graph.add_cell(Cell {
                module: ModuleKind::Feature {
                    kind,
                    input_len: window,
                    reuses_var,
                },
                domain,
                output_samples: vec![1],
                inputs,
                label: format!("{kind}@{domain}"),
            });
            feature_cells.insert(FeatureLayout::index(domain, kind), id);
        }
    }

    // One SVM cell per surviving base.
    let mut svm_cells = Vec::with_capacity(model.bases().len());
    for (bi, base) in model.bases().iter().enumerate() {
        let inputs: Vec<PortRef> = base
            .feature_indices
            .iter()
            .map(|fi| PortRef::cell(feature_cells[fi]))
            .collect();
        let id = graph.add_cell(Cell {
            module: ModuleKind::Svm {
                support_vectors: base.svm.num_support_vectors(),
                dims: base.feature_indices.len(),
                rbf: matches!(base.svm.kernel(), Kernel::Rbf { .. }),
            },
            domain: Domain::Time,
            output_samples: vec![1],
            inputs,
            label: format!("SVM-{bi}"),
        });
        svm_cells.push(id);
    }

    // Score fusion, consuming every base's vote. Added last: its output is
    // the classification result (CellGraph::result_cell relies on this).
    let fusion_cell = graph.add_cell(Cell {
        module: ModuleKind::ScoreFusion {
            bases: svm_cells.len(),
        },
        domain: Domain::Time,
        output_samples: vec![1],
        inputs: svm_cells.iter().map(|&id| PortRef::cell(id)).collect(),
        label: "Fusion".into(),
    });

    BuiltGraph {
        graph,
        feature_cells,
        svm_cells,
        fusion_cell,
    }
}

/// Builds the *generic framework* graph: the full DWT chain, every feature
/// of every domain, and `bases` RBF SVM cells each reading the whole
/// feature vector with `support_vectors` support vectors apiece.
///
/// This is the worst-case superset of any trained instance — random
/// subspace training only ever *removes* cells from it — which makes it the
/// right graph for model-independent static analysis: a range proof over
/// the full framework covers every model the trainer can produce.
///
/// # Panics
///
/// Panics if `bases == 0` or `support_vectors == 0`.
pub fn build_full_cell_graph(
    options: &BuildOptions,
    bases: usize,
    support_vectors: usize,
) -> BuiltGraph {
    assert!(bases > 0, "need at least one base");
    assert!(support_vectors > 0, "need at least one support vector");

    let mut graph = CellGraph::new(DWT_INPUT_LEN as u64);

    // Full DWT chain.
    let mut dwt_cells: Vec<CellId> = Vec::new();
    let mut upstream = PortRef::RAW;
    for level in 1..=DWT_LEVELS {
        let input_len = DWT_INPUT_LEN >> (level - 1);
        let id = graph.add_cell(Cell {
            module: ModuleKind::DwtLevel {
                input_len,
                taps: options.dwt_taps,
            },
            domain: Domain::Detail(level as u8),
            output_samples: vec![(input_len / 2) as u64, (input_len / 2) as u64],
            inputs: vec![upstream],
            label: format!("DWT-L{level}"),
        });
        dwt_cells.push(id);
        upstream = PortRef {
            producer: Some(id),
            port: 0,
        };
    }

    let domain_source = |domain: Domain| -> PortRef {
        match domain {
            Domain::Time => PortRef::RAW,
            Domain::Detail(l) => PortRef {
                producer: Some(dwt_cells[l as usize - 1]),
                port: 1,
            },
            Domain::Approx => PortRef {
                producer: Some(dwt_cells[DWT_LEVELS - 1]),
                port: 0,
            },
        }
    };

    // Every feature on every domain (FeatureKind order puts Var before Std,
    // so the reuse edge can always point backwards).
    let mut feature_cells: BTreeMap<usize, CellId> = BTreeMap::new();
    for domain in Domain::all() {
        let source = domain_source(domain);
        let window = domain.window_len();
        for kind in FeatureKind::ALL {
            let reuses_var = options.cell_reuse && kind == FeatureKind::Std;
            let inputs = if reuses_var {
                let var_id = feature_cells[&FeatureLayout::index(domain, FeatureKind::Var)];
                vec![PortRef::cell(var_id)]
            } else {
                vec![source]
            };
            let id = graph.add_cell(Cell {
                module: ModuleKind::Feature {
                    kind,
                    input_len: window,
                    reuses_var,
                },
                domain,
                output_samples: vec![1],
                inputs,
                label: format!("{kind}@{domain}"),
            });
            feature_cells.insert(FeatureLayout::index(domain, kind), id);
        }
    }

    let all_features: Vec<PortRef> = feature_cells
        .values()
        .map(|&id| PortRef::cell(id))
        .collect();
    let mut svm_cells = Vec::with_capacity(bases);
    for bi in 0..bases {
        let id = graph.add_cell(Cell {
            module: ModuleKind::Svm {
                support_vectors,
                dims: all_features.len(),
                rbf: true,
            },
            domain: Domain::Time,
            output_samples: vec![1],
            inputs: all_features.clone(),
            label: format!("SVM-{bi}"),
        });
        svm_cells.push(id);
    }

    let fusion_cell = graph.add_cell(Cell {
        module: ModuleKind::ScoreFusion { bases },
        domain: Domain::Time,
        output_samples: vec![1],
        inputs: svm_cells.iter().map(|&id| PortRef::cell(id)).collect(),
        label: "Fusion".into(),
    });

    BuiltGraph {
        graph,
        feature_cells,
        svm_cells,
        fusion_cell,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use xpro_ml::SubspaceConfig;

    /// Trains a tiny model over the 56-feature layout.
    fn tiny_model(seed: u64) -> RandomSubspaceModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..60 {
            let cls = i % 2 == 0;
            let mut x: Vec<f64> = (0..FeatureLayout::DIM)
                .map(|_| rng.gen_range(0.0..1.0))
                .collect();
            x[10] = if cls { 0.8 } else { 0.2 };
            xs.push(x);
            ys.push(if cls { 1.0 } else { -1.0 });
        }
        let cfg = SubspaceConfig {
            candidates: 8,
            features_per_base: 6,
            keep_fraction: 0.4,
            min_keep: 3,
            folds: 2,
            ..SubspaceConfig::default()
        };
        RandomSubspaceModel::train(&xs, &ys, &cfg).unwrap()
    }

    #[test]
    fn graph_matches_trained_topology() {
        let model = tiny_model(1);
        let built = build_cell_graph(&model, &BuildOptions::default());
        assert_eq!(built.svm_cells.len(), model.bases().len());
        assert_eq!(built.feature_cells.len(), model.used_features().len());
        assert_eq!(built.fusion_cell, built.graph.result_cell());
        // Every SVM input count matches its base's feature count.
        for (cell_id, base) in built.svm_cells.iter().zip(model.bases()) {
            let cell = &built.graph.cells()[*cell_id];
            assert_eq!(cell.inputs.len(), base.feature_indices.len());
        }
    }

    #[test]
    fn dwt_chain_covers_deepest_used_level() {
        let model = tiny_model(2);
        let built = build_cell_graph(&model, &BuildOptions::default());
        let deepest_needed = model
            .used_features()
            .iter()
            .map(|&fi| match FeatureLayout::decode(fi).0 {
                Domain::Time => 0,
                Domain::Detail(l) => l as usize,
                Domain::Approx => DWT_LEVELS,
            })
            .max()
            .unwrap();
        let dwt_count = built
            .graph
            .cells()
            .iter()
            .filter(|c| matches!(c.module, ModuleKind::DwtLevel { .. }))
            .count();
        assert_eq!(dwt_count, deepest_needed);
    }

    #[test]
    fn reuse_links_std_to_var_when_both_used() {
        // Find a seed whose model uses both Var and Std on some domain.
        for seed in 0..50 {
            let model = tiny_model(seed);
            let used = model.used_features();
            let domains = Domain::all();
            let both = domains.iter().find(|&&d| {
                used.contains(&FeatureLayout::index(d, FeatureKind::Var))
                    && used.contains(&FeatureLayout::index(d, FeatureKind::Std))
            });
            if let Some(&domain) = both {
                let built = build_cell_graph(&model, &BuildOptions::default());
                let std_id = built.feature_cells[&FeatureLayout::index(domain, FeatureKind::Std)];
                let var_id = built.feature_cells[&FeatureLayout::index(domain, FeatureKind::Var)];
                let std_cell = &built.graph.cells()[std_id];
                assert!(matches!(
                    std_cell.module,
                    ModuleKind::Feature {
                        reuses_var: true,
                        ..
                    }
                ));
                assert_eq!(std_cell.inputs, vec![PortRef::cell(var_id)]);
                // And with reuse disabled the Std cell reads the window.
                let no_reuse = build_cell_graph(
                    &model,
                    &BuildOptions {
                        cell_reuse: false,
                        ..BuildOptions::default()
                    },
                );
                let std_cell = &no_reuse.graph.cells()
                    [no_reuse.feature_cells[&FeatureLayout::index(domain, FeatureKind::Std)]];
                assert!(matches!(
                    std_cell.module,
                    ModuleKind::Feature {
                        reuses_var: false,
                        ..
                    }
                ));
                return;
            }
        }
        panic!("no seed produced a model using Var and Std on one domain");
    }

    #[test]
    fn feature_cells_read_their_domain_window() {
        let model = tiny_model(3);
        let built = build_cell_graph(&model, &BuildOptions::default());
        for (&fi, &cid) in &built.feature_cells {
            let (domain, kind) = FeatureLayout::decode(fi);
            let cell = &built.graph.cells()[cid];
            if let ModuleKind::Feature {
                input_len,
                reuses_var,
                ..
            } = cell.module
            {
                if !reuses_var {
                    assert_eq!(input_len, domain.window_len(), "{kind}@{domain}");
                }
            } else {
                panic!("feature cell is not a Feature module");
            }
        }
    }
}
