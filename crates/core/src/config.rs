//! Whole-system configuration: process node, radio, CPU and battery models.

use crate::aggregator::AggregatorModel;
use xpro_battery::BatteryModel;
use xpro_hw::{CellCostModel, ProcessNode};
use xpro_wireless::TransceiverModel;

/// Configuration of a complete wearable computing system (sensor node +
/// wireless link + aggregator), in the paper's default setup unless
/// overridden: 90 nm process, wireless Model 2, Cortex-A8 aggregator,
/// 40 mAh sensor battery, 2900 mAh aggregator battery (§4, §5.2, §5.6).
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Functional-cell cost model (sensor hardware).
    pub cost_model: CellCostModel,
    /// Sensor process technology.
    pub node: ProcessNode,
    /// Inter-end radio.
    pub radio: TransceiverModel,
    /// Aggregator CPU model.
    pub aggregator: AggregatorModel,
    /// Sensor-node battery.
    pub sensor_battery: BatteryModel,
    /// Aggregator battery.
    pub aggregator_battery: BatteryModel,
    /// Biosignal sampling rate in Hz (paper §3.1.2: wearables "monitor and
    /// analyze the sparse biosignal events at low sampling rates with
    /// typical values of several thousand of hertz"); with Table-1 segment
    /// lengths this yields ~15–25 events/s.
    pub sampling_hz: f64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            cost_model: CellCostModel::default(),
            node: ProcessNode::N90,
            radio: TransceiverModel::model2(),
            aggregator: AggregatorModel::cortex_a8(),
            sensor_battery: BatteryModel::sensor_40mah(),
            aggregator_battery: BatteryModel::aggregator_2900mah(),
            sampling_hz: 2048.0,
        }
    }
}

impl SystemConfig {
    /// Starts a fluent builder seeded with the paper's default system.
    ///
    /// ```
    /// use xpro_core::config::SystemConfig;
    /// use xpro_hw::ProcessNode;
    ///
    /// let cfg = SystemConfig::builder()
    ///     .node(ProcessNode::N45)
    ///     .sampling_hz(1024.0)
    ///     .build()?;
    /// assert_eq!(cfg.node, ProcessNode::N45);
    /// # Ok::<(), xpro_core::XProError>(())
    /// ```
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: SystemConfig::default(),
        }
    }

    /// Convenience: the default system at a different process node.
    pub fn with_node(node: ProcessNode) -> Self {
        SystemConfig {
            node,
            ..SystemConfig::default()
        }
    }

    /// Convenience: the default system with a different radio.
    pub fn with_radio(radio: TransceiverModel) -> Self {
        SystemConfig {
            radio,
            ..SystemConfig::default()
        }
    }

    /// Events analyzed per second for a raw segment length: a new event
    /// fires once enough samples accumulate.
    ///
    /// # Panics
    ///
    /// Panics if `segment_len == 0`.
    pub fn events_per_second(&self, segment_len: usize) -> f64 {
        assert!(segment_len > 0, "segment length must be positive");
        self.sampling_hz / segment_len as f64
    }
}

/// Fluent builder for [`SystemConfig`]; validated once, at
/// [`SystemConfigBuilder::build`].
#[derive(Clone, Debug)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        SystemConfig::builder()
    }
}

impl SystemConfigBuilder {
    /// Functional-cell cost model (sensor hardware).
    pub fn cost_model(mut self, cost_model: CellCostModel) -> Self {
        self.cfg.cost_model = cost_model;
        self
    }

    /// Sensor process technology.
    pub fn node(mut self, node: ProcessNode) -> Self {
        self.cfg.node = node;
        self
    }

    /// Inter-end radio.
    pub fn radio(mut self, radio: TransceiverModel) -> Self {
        self.cfg.radio = radio;
        self
    }

    /// Aggregator CPU model.
    pub fn aggregator(mut self, aggregator: AggregatorModel) -> Self {
        self.cfg.aggregator = aggregator;
        self
    }

    /// Sensor-node battery.
    pub fn sensor_battery(mut self, battery: BatteryModel) -> Self {
        self.cfg.sensor_battery = battery;
        self
    }

    /// Aggregator battery.
    pub fn aggregator_battery(mut self, battery: BatteryModel) -> Self {
        self.cfg.aggregator_battery = battery;
        self
    }

    /// Biosignal sampling rate in Hz (must be positive and finite).
    pub fn sampling_hz(mut self, hz: f64) -> Self {
        self.cfg.sampling_hz = hz;
        self
    }

    /// Validates the accumulated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::XProError::Config`] when the sampling rate is not a
    /// positive finite number.
    pub fn build(self) -> Result<SystemConfig, crate::XProError> {
        if !(self.cfg.sampling_hz.is_finite() && self.cfg.sampling_hz > 0.0) {
            return Err(crate::XProError::config(format!(
                "sampling_hz must be positive and finite, got {}",
                self.cfg.sampling_hz
            )));
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;

    #[test]
    fn builder_defaults_match_default_impl() {
        assert_eq!(
            SystemConfig::builder().build().unwrap(),
            SystemConfig::default()
        );
    }

    #[test]
    fn builder_rejects_bad_sampling_rate() {
        assert!(SystemConfig::builder().sampling_hz(0.0).build().is_err());
        assert!(SystemConfig::builder()
            .sampling_hz(f64::NAN)
            .build()
            .is_err());
        assert!(SystemConfig::builder().sampling_hz(-1.0).build().is_err());
    }

    #[test]
    fn default_matches_paper_setup() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.node, ProcessNode::N90);
        assert_eq!(cfg.radio, TransceiverModel::model2());
        assert_eq!(cfg.sensor_battery.capacity_mah(), 40.0);
    }

    #[test]
    fn event_rate_is_low_duty() {
        let cfg = SystemConfig::default();
        let rate = cfg.events_per_second(128);
        assert!((rate - 16.0).abs() < 1e-12);
        assert!(cfg.events_per_second(82) > rate);
    }

    #[test]
    fn with_helpers_override_one_field() {
        let c = SystemConfig::with_node(ProcessNode::N45);
        assert_eq!(c.node, ProcessNode::N45);
        assert_eq!(c.radio, TransceiverModel::model2());
        let r = SystemConfig::with_radio(TransceiverModel::model3());
        assert_eq!(r.node, ProcessNode::N90);
    }
}
