//! Integration tests for the streaming runtime on real trained pipelines:
//! the single-event dataflow trace must agree with the analytic evaluator,
//! and the fleet executor must reproduce the analytic model at zero loss
//! while degrading gracefully — and deterministically — under fault
//! injection.

use xpro::data::{generate_case_sized, CaseId};
use xpro::ml::SubspaceConfig;
use xpro::prelude::*;
use xpro::runtime::trace::{simulate_event, simulate_stream};

fn run(inst: &XProInstance, p: &Partition, cfg: RuntimeConfig) -> RunReport {
    ExecutorBuilder::new(FleetSpec::new(inst, p, cfg).expect("valid spec"))
        .build()
        .expect("valid build")
        .run()
        .report
}

fn instance(case: CaseId) -> XProInstance {
    let data = generate_case_sized(case, 100, 17);
    let cfg = PipelineConfig::builder()
        .subspace(SubspaceConfig {
            candidates: 10,
            keep_fraction: 0.3,
            min_keep: 3,
            folds: 2,
            ..SubspaceConfig::default()
        })
        .build()
        .expect("valid config");
    let p = XProPipeline::train(&data, &cfg).expect("trains");
    let len = p.segment_len();
    XProInstance::try_new(p.into_built(), SystemConfig::default(), len).expect("valid instance")
}

#[test]
fn simulated_energy_equals_analytic_energy_on_trained_graphs() {
    let inst = instance(CaseId::E1);
    let generator = XProGenerator::new(&inst);
    for engine in Engine::ALL {
        let p = generator.partition_for(engine).expect("partition");
        let analytic = evaluate(&inst, &p).sensor.total_pj();
        let simulated = simulate_event(&inst, &p).sensor_energy_pj;
        assert!(
            (analytic - simulated).abs() < 1e-5,
            "{engine}: analytic {analytic} vs simulated {simulated}"
        );
    }
}

#[test]
fn simulated_makespan_bounds_and_ordering() {
    let inst = instance(CaseId::M2);
    let generator = XProGenerator::new(&inst);
    let mut sim_delays = Vec::new();
    for engine in [Engine::InAggregator, Engine::InSensor, Engine::CrossEnd] {
        let p = generator.partition_for(engine).expect("partition");
        let serialized = evaluate(&inst, &p).delay.total_s();
        let trace = simulate_event(&inst, &p);
        assert!(
            trace.makespan_s <= serialized * (1.0 + 1e-9),
            "{engine}: sim {} > serialized {serialized}",
            trace.makespan_s
        );
        sim_delays.push((engine, trace.makespan_s));
    }
    // The asynchronous sensor cells overlap, so the dataflow execution keeps
    // the aggregator engine slowest even under simulation.
    let a = sim_delays[0].1;
    let c = sim_delays[2].1;
    assert!(c < a, "cross-end {c} not faster than aggregator {a}");
}

#[test]
fn event_stream_is_stable_at_the_configured_rate() {
    // At the configured sampling rate, back-to-back events must not queue:
    // every event's makespan equals the first's (steady state).
    let inst = instance(CaseId::C1);
    let generator = XProGenerator::new(&inst);
    let p = generator
        .partition_for(Engine::CrossEnd)
        .expect("partition");
    let period = 1.0 / inst.events_per_second();
    let traces = simulate_stream(&inst, &p, 6, period);
    let first = traces[0].makespan_s;
    for t in &traces {
        assert!(
            (t.makespan_s - first).abs() < 1e-9,
            "queueing at the nominal rate: {} vs {first}",
            t.makespan_s
        );
    }
}

#[test]
fn sensor_parallelism_is_real() {
    // The in-sensor engine's simulated makespan should clearly undercut the
    // serialized sum (independent per-cell ALUs, Fig. 3).
    let inst = instance(CaseId::E2);
    let p = Partition::all_sensor(inst.num_cells());
    let serialized = evaluate(&inst, &p).delay.total_s();
    let trace = simulate_event(&inst, &p);
    assert!(
        trace.makespan_s < serialized * 0.8,
        "sim {} vs serialized {serialized}",
        trace.makespan_s
    );
}

#[test]
fn lossless_streaming_run_reproduces_the_analytic_model() {
    // One uncontended node at zero loss: per-event energy and latency must
    // match `partition::evaluate` within 1 %.
    let inst = instance(CaseId::C1);
    let generator = XProGenerator::new(&inst);
    for engine in [Engine::CrossEnd, Engine::InSensor, Engine::InAggregator] {
        let p = generator.partition_for(engine).expect("partition");
        let analytic = evaluate(&inst, &p);
        let cfg = RuntimeConfig::builder()
            .nodes(1)
            .duration_s(1.0)
            .drop_rate(0.0)
            .build()
            .expect("valid config");
        let report = run(&inst, &p, cfg);
        let node = &report.nodes[0];
        assert_eq!(node.segments_offered, node.segments_completed, "{engine}");
        let energy = node.total_pj() / node.segments_completed as f64;
        let rel_e = (energy - analytic.sensor.total_pj()).abs() / analytic.sensor.total_pj();
        assert!(rel_e < 0.01, "{engine}: energy off by {rel_e}");
        let rel_d =
            (node.latency.p50_s - analytic.delay.total_s()).abs() / analytic.delay.total_s();
        assert!(rel_d < 0.01, "{engine}: delay off by {rel_d}");
    }
}

#[test]
fn retry_counts_rise_monotonically_across_a_drop_rate_sweep() {
    let inst = instance(CaseId::C1);
    let p = XProGenerator::new(&inst).generate().expect("partition");
    let mut last = 0u64;
    for rate in [0.0, 0.05, 0.15, 0.35] {
        let cfg = RuntimeConfig::builder()
            .nodes(4)
            .duration_s(3.0)
            .drop_rate(rate)
            .seed(2024)
            .build()
            .expect("valid config");
        let report = run(&inst, &p, cfg);
        let retries = report.total_retries();
        assert!(
            retries >= last,
            "drop rate {rate}: retries {retries} fell below {last}"
        );
        // Deterministic seeding: the same run twice is identical.
        let cfg2 = RuntimeConfig::builder()
            .nodes(4)
            .duration_s(3.0)
            .drop_rate(rate)
            .seed(2024)
            .build()
            .expect("valid config");
        let again = run(&inst, &p, cfg2);
        assert_eq!(report, again, "non-deterministic at drop rate {rate}");
        last = retries;
    }
    assert!(last > 0, "the sweep never retried");
}

#[test]
fn fleet_run_with_loss_completes_without_stalling() {
    // The acceptance scenario: ≥ 4 nodes, ≥ 0.05 drop rate — the run must
    // finish with every offered segment accounted for and report latency
    // percentiles and fault counters.
    let inst = instance(CaseId::C1);
    let p = XProGenerator::new(&inst).generate().expect("partition");
    let cfg = RuntimeConfig::builder()
        .nodes(4)
        .duration_s(5.0)
        .drop_rate(0.05)
        .seed(42)
        .build()
        .expect("valid config");
    let report = run(&inst, &p, cfg);
    let offered: u64 = report.nodes.iter().map(|n| n.segments_offered).sum();
    assert!(offered > 0);
    assert_eq!(offered, report.total_completed() + report.total_lost());
    let fleet = report.fleet_latency();
    assert!(fleet.p50_s > 0.0 && fleet.p50_s <= fleet.p95_s && fleet.p95_s <= fleet.p99_s);
    assert_eq!(
        report.metrics.counter("frame_drops") > 0,
        report.total_retries() > 0 || report.total_lost() > 0
    );
    for n in &report.nodes {
        assert!(n.throughput_hz > 0.0, "node {} starved", n.node);
        assert!(n.battery_hours > 0.0);
    }
}

#[test]
fn timeouts_skip_segments_instead_of_stalling_the_stream() {
    // A brutal link with a tight deadline: segments are skipped (timed out
    // or dropped), later segments still complete, and the run terminates.
    let inst = instance(CaseId::C1);
    let p = Partition::all_aggregator(inst.num_cells());
    let cfg = RuntimeConfig::builder()
        .nodes(4)
        .duration_s(3.0)
        .drop_rate(0.8)
        .max_retries(2)
        .timeout_s(0.03)
        .seed(11)
        .build()
        .expect("valid config");
    let report = run(&inst, &p, cfg);
    let offered: u64 = report.nodes.iter().map(|n| n.segments_offered).sum();
    assert_eq!(offered, report.total_completed() + report.total_lost());
    assert!(report.total_lost() > 0, "nothing lost at 80 % drop");
    assert!(
        report.total_completed() > 0,
        "graceful degradation failed: nothing completed"
    );
}
