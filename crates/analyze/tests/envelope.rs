//! Property tests tying the analyzer to the real datapath: for random
//! signals inside the analyzer-proven input bounds, every fixed-point
//! output must land inside the abstract output interval, and — for the
//! well-conditioned cells — within the reported error envelope of the
//! `f64` reference implementation.

use proptest::prelude::*;
use xpro_analyze::{analyze, AnalyzeOptions, CellSpec, SignalBounds};
use xpro_hw::ModuleKind;
use xpro_signal::dwt::{dwt_single, dwt_single_q16, Wavelet};
use xpro_signal::fixed::Q16;
use xpro_signal::stats::{feature_f64, feature_q16, FeatureKind};

fn feature_spec(kind: FeatureKind, n: usize) -> CellSpec {
    CellSpec {
        module: ModuleKind::Feature {
            kind,
            input_len: n,
            reuses_var: false,
        },
        inputs: vec![(None, 0)],
        label: kind.to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn feature_outputs_stay_inside_abstract_ranges_and_envelopes(
        w in prop::collection::vec(-1.0f64..1.0, 16..129)
    ) {
        let n = w.len();
        let wq: Vec<Q16> = w.iter().map(|&v| Q16::from_f64(v)).collect();
        let cells: Vec<CellSpec> = FeatureKind::ALL
            .iter()
            .map(|&k| feature_spec(k, n))
            .collect();
        let report = analyze(&cells, SignalBounds::default(), &AnalyzeOptions::default());
        prop_assert!(report.is_overflow_free(), "{report}");

        for (i, &kind) in FeatureKind::ALL.iter().enumerate() {
            let fixed = feature_q16(kind, &wq);
            let out = report.cells[i].output();
            prop_assert!(
                out.interval.contains(fixed),
                "{kind}: {} outside {}",
                fixed.to_f64(),
                out.interval
            );
            // The error envelope is checked against the float reference for
            // the well-conditioned features. Skew/Kurt envelopes are
            // evaluated at the reference spread (a heuristic the analyzer
            // reports as PrecisionLoss, not a sound bound), and Czero's
            // sign comparator can legitimately flip on samples within half
            // an ulp of zero — so Czero is only checked when every sample
            // is comfortably signed.
            let check_envelope = match kind {
                FeatureKind::Skew | FeatureKind::Kurt => false,
                FeatureKind::Czero => w.iter().all(|x| x.abs() > 1e-4),
                _ => true,
            };
            if check_envelope {
                let reference = feature_f64(kind, &w);
                let err = (fixed.to_f64() - reference).abs();
                prop_assert!(
                    err <= out.err_value(),
                    "{kind}: |{} - {reference}| = {err} exceeds envelope {}",
                    fixed.to_f64(),
                    out.err_value()
                );
            }
        }
    }

    #[test]
    fn dwt_outputs_stay_inside_abstract_ranges_and_envelopes(
        w in prop::collection::vec(-1.0f64..1.0, 16..129),
        wavelet in prop::sample::select(vec![Wavelet::Haar, Wavelet::Db2, Wavelet::Db4]),
    ) {
        let n = w.len();
        let cells = vec![CellSpec {
            module: ModuleKind::DwtLevel {
                input_len: n,
                taps: wavelet.taps(),
            },
            inputs: vec![(None, 0)],
            label: format!("DWT-{}", wavelet.name()),
        }];
        let report = analyze(&cells, SignalBounds::default(), &AnalyzeOptions::default());
        prop_assert!(report.is_overflow_free(), "{report}");

        let wq: Vec<Q16> = w.iter().map(|&v| Q16::from_f64(v)).collect();
        let (approx_q, detail_q) = dwt_single_q16(&wq, wavelet);
        let reference = dwt_single(&w, wavelet);
        let subbands = [
            (0usize, &approx_q, &reference.approx),
            (1usize, &detail_q, &reference.detail),
        ];
        for (port, fixed, float) in subbands {
            let out = report.cells[0].ports[port];
            for (&fq, &fr) in fixed.iter().zip(float.iter()) {
                prop_assert!(
                    out.interval.contains(fq),
                    "{}[{port}]: {} outside {}",
                    wavelet.name(),
                    fq.to_f64(),
                    out.interval
                );
                let err = (fq.to_f64() - fr).abs();
                prop_assert!(
                    err <= out.err_value(),
                    "{}[{port}]: |{} - {fr}| = {err} exceeds envelope {}",
                    wavelet.name(),
                    fq.to_f64(),
                    out.err_value()
                );
            }
        }
    }
}
