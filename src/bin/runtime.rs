//! `runtime` — streaming fleet execution of a partitioned engine.
//!
//! Trains a Table-1 case, lets the Automatic XPro Generator place the
//! cut (or forces one of the reference engines), then streams segments
//! from a fleet of sensor nodes through the partition in virtual time:
//! one lossy half-duplex channel, bounded retransmission with exponential
//! backoff, per-segment deadlines and aggregator batching. Prints the
//! run report (per-node throughput, latency percentiles, drop/retry
//! counters, energy split, battery life) as text or JSON.
//!
//! Run: `cargo run --release --bin runtime -- --nodes 4 --seconds 5 --drop-rate 0.1`

use std::process::ExitCode;
use xpro::core::generator::Engine;
use xpro::core::XProError;
use xpro::data::{generate_case_sized, CaseId};
use xpro::ml::SubspaceConfig;
use xpro::prelude::*;

const USAGE: &str = "\
usage: runtime [options]

Streaming cross-end execution of a partitioned engine over a fleet.

options:
  --case <SYM>        Table-1 workload to train (C1, C2, E1, E2, M1, M2;
                      default C1)
  --segments <N>      training-set size (default 60)
  --engine <E>        partition to stream: cross-end (default), in-sensor,
                      in-aggregator, trivial
  --nodes <N>         sensor nodes sharing channel + aggregator (default 4)
  --seconds <S>       simulated (virtual) duration (default 10)
  --drop-rate <P>     per-attempt frame loss probability in [0, 1)
                      (default 0)
  --max-retries <N>   retransmissions per frame before the segment is
                      abandoned (default 3)
  --timeout <S>       per-segment deadline in seconds (default 1)
  --seed <N>          fault-injection RNG seed (default 1)
  --json              emit the report as JSON instead of text
  -h, --help          this message";

struct Args {
    case: CaseId,
    segments: usize,
    engine: Engine,
    nodes: usize,
    seconds: f64,
    drop_rate: f64,
    max_retries: u32,
    timeout_s: f64,
    seed: u64,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        case: CaseId::C1,
        segments: 60,
        engine: Engine::CrossEnd,
        nodes: 4,
        seconds: 10.0,
        drop_rate: 0.0,
        max_retries: 3,
        timeout_s: 1.0,
        seed: 1,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--case" => {
                let sym = value("--case")?;
                args.case = CaseId::ALL
                    .into_iter()
                    .find(|c| c.symbol().eq_ignore_ascii_case(&sym))
                    .ok_or_else(|| format!("unknown case {sym:?}"))?;
            }
            "--segments" => {
                args.segments = value("--segments")?
                    .parse()
                    .map_err(|e| format!("--segments: {e}"))?;
            }
            "--engine" => {
                args.engine = match value("--engine")?.to_ascii_lowercase().as_str() {
                    "cross-end" | "c" => Engine::CrossEnd,
                    "in-sensor" | "s" => Engine::InSensor,
                    "in-aggregator" | "a" => Engine::InAggregator,
                    "trivial" | "t" => Engine::TrivialCut,
                    other => return Err(format!("unknown engine {other:?}")),
                };
            }
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--seconds" => {
                args.seconds = value("--seconds")?
                    .parse()
                    .map_err(|e| format!("--seconds: {e}"))?;
            }
            "--drop-rate" => {
                args.drop_rate = value("--drop-rate")?
                    .parse()
                    .map_err(|e| format!("--drop-rate: {e}"))?;
            }
            "--max-retries" => {
                args.max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?;
            }
            "--timeout" => {
                args.timeout_s = value("--timeout")?
                    .parse()
                    .map_err(|e| format!("--timeout: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--json" => args.json = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), XProError> {
    let data = generate_case_sized(args.case, args.segments, 42);
    let cfg = PipelineConfig::builder()
        .subspace(SubspaceConfig {
            candidates: 10,
            keep_fraction: 0.3,
            min_keep: 3,
            folds: 2,
            ..SubspaceConfig::default()
        })
        .build()?;
    let pipeline = XProPipeline::train(&data, &cfg)?;
    let segment_len = pipeline.segment_len();
    let instance =
        XProInstance::try_new(pipeline.into_built(), SystemConfig::default(), segment_len)?;
    let generator = XProGenerator::new(&instance);
    let partition = generator.partition_for(args.engine)?;

    let run_cfg = RuntimeConfig::builder()
        .nodes(args.nodes)
        .duration_s(args.seconds)
        .drop_rate(args.drop_rate)
        .max_retries(args.max_retries)
        .timeout_s(args.timeout_s)
        .seed(args.seed)
        .build()?;
    let report = Executor::new(&instance, &partition, run_cfg)?.run();

    if args.json {
        println!("{}", report.to_json());
    } else {
        println!(
            "case {} / engine {:?}: {} cells, {} on the sensor",
            args.case.symbol(),
            args.engine,
            instance.num_cells(),
            partition.sensor_count()
        );
        print!("{}", report.render());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
