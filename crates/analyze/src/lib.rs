//! Static range and overflow analysis for the fixed-point cell dataflow.
//!
//! XPro executes its functional cells — windowed statistics, the discrete
//! wavelet transform, and SVM scoring — in Q16.16 fixed point when they are
//! mapped to the sensor end. Q16.16 saturates at ±32768, and two of the
//! primitive operations have hard cliffs: the exponential overflows to
//! `MAX` once its argument reaches 11, and the central-moment powers grow
//! as the fourth power of the window's spread. Whether a given partition is
//! numerically safe therefore depends on the *input signal's range*, the
//! depth of the DWT chain feeding each cell, and which features the model
//! selected.
//!
//! This crate answers that question statically. [`analyze`] abstractly
//! interprets a cell list over **two cooperating abstract domains**:
//!
//! * an interval domain ([`interval::Interval`]) that mirrors the Q16.16
//!   semantics exactly — same rounding, same rails, same operation order as
//!   the concrete kernels — augmented with a worst-case rounding-error
//!   envelope in ulps;
//! * an affine-arithmetic domain ([`affine::AffineForm`]) whose noise
//!   symbols track correlations, so `x - mean` cancels instead of widening
//!   and relational moment bounds (Popoviciu) apply.
//!
//! Every cell gets a [`Verdict`] per domain plus a combined verdict that
//! takes the tighter sound claim: proven safe, possible overflow (with the
//! op and magnitude), or disproportionate precision loss.
//!
//! `xpro-core` runs this analysis when instantiating a deployment and uses
//! it to reject partition candidates that would place an overflow-prone
//! cell on the fixed-point sensor end; the `analyze` binary prints the
//! per-cell report and can emit machine-readable findings ([`gate`]) for
//! CI regression gating.
//!
//! Beyond value ranges, the crate also bounds a deployment's *dynamics*:
//! [`timing`] derives sound worst-case response-time, queue-occupancy and
//! utilization bounds from a plain-number deployment model, and [`energy`]
//! turns the same model into worst-case per-epoch energy and battery-
//! lifetime floors. Those verdicts flow through the same findings gate at
//! synthetic cell indices ([`gate::TIMING_CELL_BASE`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod affine;
pub mod analysis;
pub mod approx;
pub mod energy;
pub mod gate;
pub mod interval;
pub mod timing;

pub use affine::{AffineForm, SymbolCtx};
pub use analysis::{
    analyze, analyze_approx, try_analyze, try_analyze_approx, AnalysisReport, AnalyzeError,
    AnalyzeOptions, CellReport, CellSpec, DomainReport, SignalBounds, ValueRange, Verdict,
};
pub use approx::{
    analyze_approx_budget, approx_finding, ApproxAnalysis, ApproxBudget, ApproxVerdict,
    SvmDeviation,
};
pub use energy::{analyze_energy, EnergyBounds, EnergyViolation};
pub use gate::{
    diff_findings, parse_findings, render_findings, Finding, Severity, APPROX_CELL_BASE,
    TIMING_CELL_BASE,
};
pub use interval::{Hazard, HazardOp, Interval};
pub use timing::{
    analyze_tenant_timing, analyze_timing, tenant_findings, Resource, RetryRegime, TenantModel,
    TenantTimingBounds, TimingBounds, TimingModel, TimingViolation,
};
