//! Figure 13: energy overhead on the aggregator for the aggregator engine
//! (A) and the cross-end engine (C).
//!
//! Paper shape: the cross-end engine's aggregator energy is less than half
//! of the aggregator engine's (fewer functional cells in software plus less
//! raw data received); §5.6 also notes a 2900 mAh aggregator battery powers
//! XPro for tens of hours or more.
//!
//! Run: `cargo run --release -p xpro-bench --bin fig13_aggregator [--paper]`

use xpro_bench::{fmt, paper_mode, print_table, train_all_cases};
use xpro_core::config::SystemConfig;
use xpro_core::generator::Engine;
use xpro_core::report::EngineComparison;

fn main() {
    let cases = train_all_cases(paper_mode());

    let header: Vec<String> = [
        "case",
        "A (uJ/event)",
        "C (uJ/event)",
        "C/A",
        "A battery (h)",
        "C battery (h)",
    ]
    .iter()
    .map(std::string::ToString::to_string)
    .collect();
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for t in &cases {
        let inst = t.instance(SystemConfig::default());
        let cmp = EngineComparison::evaluate(t.case.symbol(), &inst).expect("evaluates");
        let a = cmp.of(Engine::InAggregator);
        let c = cmp.of(Engine::CrossEnd);
        ratios.push(c.aggregator_pj / a.aggregator_pj);
        rows.push(vec![
            t.case.symbol().to_string(),
            fmt(a.aggregator_pj / 1e6),
            fmt(c.aggregator_pj / 1e6),
            fmt(ratios.last().copied().expect("just pushed")),
            fmt(a.aggregator_battery_hours),
            fmt(c.aggregator_battery_hours),
        ]);
    }
    print_table(
        "Figure 13: aggregator energy overhead (90nm, Model 2)",
        &header,
        &rows,
    );
    println!(
        "\naverage C/A on the aggregator: {:.2} (paper: less than half)",
        ratios.iter().sum::<f64>() / ratios.len() as f64
    );
}
