//! The noisy-neighbor acceptance property of the multi-tenant admission
//! layer.
//!
//! A tenant offering ~10× its rate quota must be walked through the
//! degradation tiers and quarantined by its circuit breaker, while a
//! compliant tenant sharing the same aggregator stays within 5% of the
//! p99 latency and delivery rate it would see running the fleet alone.
//! The whole episode is deterministic at any shard count, and the
//! compliant tenant never exceeds its static WCRT/queue bounds (the
//! offender is degradation-enabled, so the calculus refuses its bounds
//! — `unprovable` — rather than reporting unsound numbers).

#![allow(clippy::unwrap_used)] // tests fail loudly by design

use std::collections::BTreeMap;
use xpro_analyze::timing::RetryRegime;
use xpro_core::builder::BuiltGraph;
use xpro_core::cellgraph::{Cell, CellGraph, PortRef};
use xpro_core::config::SystemConfig;
use xpro_core::generator::{Engine, XProGenerator};
use xpro_core::instance::XProInstance;
use xpro_core::layout::Domain;
use xpro_core::partition::Partition;
use xpro_hw::ModuleKind;
use xpro_runtime::{
    check_tenant_report, tenant_bounds, ExecutorBuilder, FleetSpec, RunReport, RuntimeConfig,
    TenantSpec,
};
use xpro_signal::stats::FeatureKind;

/// The crate's unit-test fixture shape, rebuilt here because integration
/// tests cannot see it: four time-domain features, one SVM, one fusion.
fn tiny_instance(seed: u64) -> XProInstance {
    let mut graph = CellGraph::new(128);
    let mut feature_cells = BTreeMap::new();
    let kinds = [
        FeatureKind::Max,
        FeatureKind::Var,
        FeatureKind::Skew,
        FeatureKind::Kurt,
    ];
    for (i, &kind) in kinds.iter().enumerate() {
        let id = graph.add_cell(Cell {
            module: ModuleKind::Feature {
                kind,
                input_len: 128,
                reuses_var: false,
            },
            domain: Domain::Time,
            output_samples: vec![1],
            inputs: vec![PortRef::RAW],
            label: format!("f{i}"),
        });
        feature_cells.insert(i, id);
    }
    let svm = graph.add_cell(Cell {
        module: ModuleKind::Svm {
            support_vectors: 10 + (seed % 40) as usize,
            dims: 4,
            rbf: true,
        },
        domain: Domain::Time,
        output_samples: vec![1],
        inputs: (0..4).map(|i| PortRef::cell(feature_cells[&i])).collect(),
        label: "svm".into(),
    });
    let fusion = graph.add_cell(Cell {
        module: ModuleKind::ScoreFusion { bases: 1 },
        domain: Domain::Time,
        output_samples: vec![1],
        inputs: vec![PortRef::cell(svm)],
        label: "fusion".into(),
    });
    let built = BuiltGraph {
        graph,
        feature_cells,
        svm_cells: vec![svm],
        fusion_cell: fusion,
    };
    XProInstance::try_new(built, SystemConfig::default(), 100).expect("valid test instance")
}

fn run_sharded(
    inst: &XProInstance,
    partition: &Partition,
    cfg: &RuntimeConfig,
    shards: usize,
) -> RunReport {
    ExecutorBuilder::new(FleetSpec::new(inst, partition, cfg.clone()).unwrap())
        .shards(shards)
        .build()
        .unwrap()
        .run()
        .report
}

#[test]
fn noisy_neighbor_is_quarantined_and_the_compliant_tenant_is_isolated() {
    let inst = tiny_instance(2);
    let partition = XProGenerator::new(&inst)
        .partition_for(Engine::CrossEnd)
        .unwrap();

    // Per-node offered rate is sampling_hz / segment_len ≈ 20.5 Hz, so
    // the offender's 4 nodes put ~82 Hz against an 8 Hz quota — a 10×
    // breach, sustained for the whole run.
    let tenants = vec![
        TenantSpec::new("compliant", 4).degrade(false),
        TenantSpec::new("offender", 4)
            .quota_hz(8.0)
            .quota_burst(2)
            .degrade(true)
            .breaker_rounds(2)
            .cooldown_s(0.5),
    ];
    let build = |nodes: usize, tenants: Vec<TenantSpec>| {
        RuntimeConfig::builder()
            .nodes(nodes)
            .duration_s(3.0)
            .drop_rate(0.0)
            .seed(17)
            .agg_inbox(32)
            .tenants(tenants)
            .build()
            .unwrap()
    };
    let cfg = build(8, tenants);
    let report = run_sharded(&inst, &partition, &cfg, 1);

    // The offender walks the degradation tiers and its breaker trips.
    let offender = &report.tenants[1];
    assert!(offender.admission_rejected > 0, "quota never fired");
    assert!(offender.quarantines >= 1, "breaker never tripped");
    assert!(offender.quarantine_dropped > 0, "quarantine shed nothing");
    assert!(
        offender.tier_times.classify_only_s > 0.0 || offender.tier_times.shed_s > 0.0,
        "offender never left the full-fidelity tier: {:?}",
        offender.tier_times
    );
    assert!(
        offender.delivery_rate < 0.5,
        "a 10× breach must gut delivery"
    );

    // The compliant tenant is untouched by admission control...
    let compliant = &report.tenants[0];
    assert_eq!(compliant.admission_rejected, 0);
    assert_eq!(compliant.quarantine_dropped, 0);
    assert_eq!(compliant.quarantines, 0);
    assert_eq!(compliant.tier_times.classify_only_s, 0.0);
    assert_eq!(compliant.tier_times.shed_s, 0.0);

    // ...and stays within 5% of the single-tenant baseline: the same
    // four nodes running the fleet alone, no tenancy at all.
    let baseline = run_sharded(&inst, &partition, &build(4, Vec::new()), 1);
    let base_done: u64 = baseline.nodes.iter().map(|n| n.segments_completed).sum();
    let base_offered: u64 = baseline.nodes.iter().map(|n| n.segments_offered).sum();
    let base_delivery = base_done as f64 / base_offered as f64;
    assert!(
        compliant.delivery_rate >= 0.95 * base_delivery,
        "compliant delivery {} fell >5% below baseline {}",
        compliant.delivery_rate,
        base_delivery
    );
    let base_p99 = baseline
        .nodes
        .iter()
        .map(|n| n.latency.p99_s)
        .fold(0.0f64, f64::max);
    assert!(
        compliant.latency.p99_s <= 1.05 * base_p99,
        "compliant p99 {} exceeded baseline {} by >5%",
        compliant.latency.p99_s,
        base_p99
    );

    // The episode is an execution-strategy-independent simulation:
    // byte-identical at any shard count.
    let json = report.to_json();
    for shards in [2usize, 4] {
        let sharded = run_sharded(&inst, &partition, &cfg, shards);
        assert_eq!(report, sharded, "{shards} shards diverged structurally");
        assert_eq!(json, sharded.to_json(), "{shards} shards diverged in JSON");
    }

    // Static calculus: the compliant tenant's observations stay under
    // its envelope bounds; the degradation-enabled offender is refused
    // (`unprovable`) and therefore checked against nothing.
    for regime in [RetryRegime::FaultFree, RetryRegime::WorstCaseRetry] {
        let (fleet, bounds) = tenant_bounds(&inst, &partition, &cfg, regime).unwrap();
        assert!(fleet.wcrt_s.is_some(), "fleet envelope must be provable");
        assert!(!bounds[0].unprovable, "compliant tenant must be provable");
        assert!(bounds[1].unprovable, "degrading offender must be refused");
        let violations = check_tenant_report(&report, &bounds);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
