//! The shared per-segment execution profile of a partition.
//!
//! Three consumers need the same walk over a partitioned cell graph —
//! in-sensor compute time/energy, in-aggregator compute time/energy, and
//! one wireless frame per cross-end producer port (the grouped-cells rule)
//! plus the one-sample result frame:
//!
//! * [`crate::partition::evaluate`] prices a partition per the paper's
//!   §3.2 model;
//! * [`crate::certificate::derive_delay_s`] re-derives the end-to-end
//!   delay for plan verification;
//! * the runtime executor builds its per-epoch segment plan from it, and
//!   the static WCRT analyzer's best-case sanity check compares against
//!   its uncontended delay.
//!
//! Historically each carried its own copy of the walk; [`segment_profile`]
//! is now the single implementation they all share, so a pricing fix (or
//! bug) lands in every consumer at once and the cross-checks among them
//! test the *uses* of the numbers rather than three transcriptions of the
//! same loop.

use crate::instance::XProInstance;
use crate::layout::BITS_PER_SAMPLE;
use crate::partition::Partition;
use xpro_wireless::Frame;

/// One planned cross-end wireless transfer of a segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrameProfile {
    /// Payload samples carried (header excluded).
    pub samples: u64,
    /// Channel occupancy of one transmission attempt, in seconds.
    pub airtime_s: f64,
    /// Sensor-side radio energy per attempt in picojoules (tx for uplink
    /// frames, rx for downlink frames).
    pub sensor_pj: f64,
    /// Aggregator-side radio energy per attempt in picojoules.
    pub agg_pj: f64,
}

/// Per-segment execution profile of one partition: the three serialized
/// phases every segment flows through, priced per the paper's §3.2 model.
#[derive(Clone, Debug, PartialEq)]
pub struct SegmentProfile {
    /// Front-end (in-sensor) computation time per segment, in seconds.
    pub front_s: f64,
    /// Back-end (in-aggregator) computation time per segment, in seconds.
    pub back_s: f64,
    /// In-sensor compute energy per segment, in picojoules.
    pub sensor_compute_pj: f64,
    /// In-aggregator compute energy per segment, in picojoules.
    pub agg_compute_pj: f64,
    /// Every cross-end transfer of the segment, in `active_ports` order
    /// with the result frame (when the classifier output is produced on
    /// the sensor) last.
    pub frames: Vec<FrameProfile>,
}

impl SegmentProfile {
    /// Total single-attempt wireless transfer time, in seconds.
    pub fn wireless_s(&self) -> f64 {
        self.frames.iter().map(|f| f.airtime_s).sum()
    }

    /// Uncontended fault-free end-to-end delay of one segment: the three
    /// phases back to back with every frame delivered on its first
    /// attempt. This is the number `partition::evaluate` reports as the
    /// delay total and `certificate::derive_delay_s` checks against the
    /// promised limit.
    pub fn delay_s(&self) -> f64 {
        self.front_s + self.wireless_s() + self.back_s
    }

    /// Sensor radio energy per segment at one attempt per frame, in pJ.
    pub fn sensor_wireless_pj(&self) -> f64 {
        self.frames.iter().map(|f| f.sensor_pj).sum()
    }

    /// Aggregator radio energy per segment at one attempt per frame, in pJ.
    pub fn agg_wireless_pj(&self) -> f64 {
        self.frames.iter().map(|f| f.agg_pj).sum()
    }
}

/// Walks a partitioned cell graph once and extracts its
/// [`SegmentProfile`]: per-end compute time and energy summed over the
/// cells of each end, plus one [`FrameProfile`] per producer port with a
/// cross-end consumer (each distinct output is transmitted at most once —
/// the grouped-cells rule), plus the one-sample result frame when the
/// classification output is produced on the sensor.
///
/// # Panics
///
/// Panics if the partition size differs from the instance's cell count.
pub fn segment_profile(instance: &XProInstance, partition: &Partition) -> SegmentProfile {
    assert_eq!(
        partition.in_sensor.len(),
        instance.num_cells(),
        "partition size mismatch"
    );
    let graph = &instance.built().graph;
    let radio = &instance.config().radio;
    let mut profile = SegmentProfile {
        front_s: 0.0,
        back_s: 0.0,
        sensor_compute_pj: 0.0,
        agg_compute_pj: 0.0,
        frames: Vec::new(),
    };

    for c in 0..instance.num_cells() {
        if partition.in_sensor[c] {
            profile.sensor_compute_pj += instance.sensor_cost(c).energy_pj;
            profile.front_s += instance.sensor_time_s(c);
        } else {
            profile.agg_compute_pj += instance.aggregator_energy_pj(c);
            profile.back_s += instance.aggregator_time_s(c);
        }
    }

    let mut push = |samples: u64, producer_sensor: bool| {
        let frame = Frame::for_samples(samples, BITS_PER_SAMPLE);
        let (sensor_pj, agg_pj) = if producer_sensor {
            (radio.tx_frame_pj(frame), radio.rx_frame_pj(frame))
        } else {
            (radio.rx_frame_pj(frame), radio.tx_frame_pj(frame))
        };
        profile.frames.push(FrameProfile {
            samples,
            airtime_s: radio.frame_airtime_s(frame),
            sensor_pj,
            agg_pj,
        });
    };
    for port in graph.active_ports() {
        // Raw data originates at the sensor.
        let producer_sensor = port.producer.is_none_or(|c| partition.in_sensor[c]);
        let any_cross = graph
            .consumers_of(port)
            .iter()
            .any(|&c| partition.in_sensor[c] != producer_sensor);
        if !any_cross {
            continue;
        }
        let samples = match port.producer {
            // The raw upload carries the true (unpadded) segment.
            None => instance.segment_len() as u64,
            Some(_) => graph.port_samples(port),
        };
        push(samples, producer_sensor);
    }
    if partition.in_sensor[graph.result_cell()] {
        push(1, true);
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_instance;

    #[test]
    fn all_aggregator_uploads_exactly_the_raw_segment() {
        let inst = tiny_instance(1);
        let p = Partition::all_aggregator(inst.num_cells());
        let profile = segment_profile(&inst, &p);
        assert_eq!(profile.front_s, 0.0);
        assert_eq!(profile.sensor_compute_pj, 0.0);
        assert!(profile.back_s > 0.0);
        assert_eq!(profile.frames.len(), 1, "one raw upload frame");
        assert_eq!(profile.frames[0].samples, inst.segment_len() as u64);
        assert!(profile.frames[0].sensor_pj > 0.0);
    }

    #[test]
    fn all_sensor_sends_only_the_result_frame() {
        let inst = tiny_instance(2);
        let p = Partition::all_sensor(inst.num_cells());
        let profile = segment_profile(&inst, &p);
        assert_eq!(profile.back_s, 0.0);
        assert_eq!(profile.agg_compute_pj, 0.0);
        assert_eq!(profile.frames.len(), 1, "one result frame");
        assert_eq!(profile.frames[0].samples, 1);
    }

    #[test]
    fn totals_sum_the_frames() {
        let inst = tiny_instance(3);
        let p = Partition::all_aggregator(inst.num_cells());
        let profile = segment_profile(&inst, &p);
        let airtime: f64 = profile.frames.iter().map(|f| f.airtime_s).sum();
        assert_eq!(profile.wireless_s(), airtime);
        assert_eq!(
            profile.delay_s(),
            profile.front_s + airtime + profile.back_s
        );
    }

    #[test]
    #[should_panic(expected = "partition size mismatch")]
    fn rejects_mismatched_partition() {
        let inst = tiny_instance(4);
        let p = Partition::all_sensor(inst.num_cells() + 1);
        let _ = segment_profile(&inst, &p);
    }
}
