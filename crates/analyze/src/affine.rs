//! Affine-arithmetic (zonotope) domain over the cell dataflow.
//!
//! An [`AffineForm`] represents a value as `c + Σᵢ aᵢ·εᵢ`, where each noise
//! symbol `εᵢ ∈ [-1, 1]` stands for one independent source of uncertainty
//! (a raw sample, a nonlinear-op residue). Unlike a plain interval, two
//! forms that share a symbol stay *correlated*: `x - x` is exactly zero,
//! and `x - mean(x₁..xₙ)` — the central-moment deviation — cancels the
//! common part and leaves a radius of `2r(n-1)/n` instead of the interval
//! domain's `2r`. That cancellation is what lets the analyzer demote
//! spurious `MayOverflow` verdicts on deep-domain moment cells whose
//! windows are short (the level-5 DWT bands hold four samples, so the
//! deviation can only reach three quarters of the window width).
//!
//! Arithmetic is exact real arithmetic over `f64` coefficients; Q16.16
//! rounding is *not* mirrored here (the interval domain does that) and is
//! instead covered by the caller's separate ulp error envelope, which must
//! be added to [`AffineForm::range`] before comparing against the
//! saturation rails. Linear operations (add, sub, negate, scaling) are
//! exact on the affine part; nonlinear operations (products) keep the
//! bilinear cross terms in a fresh symbol, with squares one-sided
//! (`L² ∈ [0, r²]` rather than `[-r², r²]`).

/// Identifier of a noise symbol.
pub type Symbol = u32;

/// Allocator of fresh noise symbols for one analysis run.
///
/// Symbols are meaningful only relative to the context that issued them:
/// forms built under different contexts must not be combined.
#[derive(Clone, Debug, Default)]
pub struct SymbolCtx {
    next: Symbol,
}

impl SymbolCtx {
    /// A fresh context with no symbols issued.
    pub fn new() -> Self {
        SymbolCtx::default()
    }

    /// Issues a fresh, never-before-used symbol.
    pub fn fresh(&mut self) -> Symbol {
        let s = self.next;
        self.next += 1;
        s
    }

    /// Number of symbols issued so far.
    pub fn issued(&self) -> usize {
        self.next as usize
    }
}

/// A value represented as `center + Σ coeff·ε` with `ε ∈ [-1, 1]`.
///
/// Terms are kept sorted by symbol with no zero coefficients, so equality
/// of representation coincides with syntactic equality of the form.
#[derive(Clone, Debug, PartialEq)]
pub struct AffineForm {
    center: f64,
    /// `(symbol, coefficient)` pairs, sorted by symbol, coefficients ≠ 0.
    terms: Vec<(Symbol, f64)>,
}

impl AffineForm {
    /// The constant `v` (no uncertainty).
    pub fn constant(v: f64) -> Self {
        AffineForm {
            center: v,
            terms: Vec::new(),
        }
    }

    /// The form `center + coeff·ε` over a fresh symbol.
    pub fn with_fresh(center: f64, coeff: f64, ctx: &mut SymbolCtx) -> Self {
        let mut terms = Vec::new();
        if coeff != 0.0 {
            terms.push((ctx.fresh(), coeff.abs()));
        }
        AffineForm { center, terms }
    }

    /// The form covering `[lo, hi]` with one fresh symbol.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn from_range(lo: f64, hi: f64, ctx: &mut SymbolCtx) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "non-finite range");
        assert!(lo <= hi, "inverted range");
        AffineForm::with_fresh((lo + hi) / 2.0, (hi - lo) / 2.0, ctx)
    }

    /// The central value.
    pub fn center(&self) -> f64 {
        self.center
    }

    /// Total deviation radius `Σ |coeff|`.
    pub fn radius(&self) -> f64 {
        self.terms.iter().map(|&(_, a)| a.abs()).sum()
    }

    /// Concretization: the interval `[center - radius, center + radius]`.
    pub fn range(&self) -> (f64, f64) {
        let r = self.radius();
        (self.center - r, self.center + r)
    }

    /// Largest absolute value the form can take.
    pub fn max_abs(&self) -> f64 {
        let (lo, hi) = self.range();
        lo.abs().max(hi.abs())
    }

    /// Renames every symbol to a fresh one, collapsing the linear part into
    /// a single term of the same radius. Used to instantiate independent
    /// draws from the distribution a port form describes (e.g. the `n`
    /// samples of a feature window): each draw shares the center and
    /// radius, but none of the correlations.
    pub fn independent_copy(&self, ctx: &mut SymbolCtx) -> AffineForm {
        AffineForm::with_fresh(self.center, self.radius(), ctx)
    }

    /// Exact affine sum `self + rhs` (shared symbols combine term-wise).
    pub fn add(&self, rhs: &AffineForm) -> AffineForm {
        let mut terms = Vec::with_capacity(self.terms.len() + rhs.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() || j < rhs.terms.len() {
            let take_left = match (self.terms.get(i), rhs.terms.get(j)) {
                (Some(&(sa, _)), Some(&(sb, _))) => {
                    if sa == sb {
                        let a = self.terms[i].1 + rhs.terms[j].1;
                        if a != 0.0 {
                            terms.push((sa, a));
                        }
                        i += 1;
                        j += 1;
                        continue;
                    }
                    sa < sb
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            if take_left {
                terms.push(self.terms[i]);
                i += 1;
            } else {
                terms.push(rhs.terms[j]);
                j += 1;
            }
        }
        AffineForm {
            center: self.center + rhs.center,
            terms,
        }
    }

    /// Exact affine difference `self - rhs`: shared symbols cancel.
    pub fn sub(&self, rhs: &AffineForm) -> AffineForm {
        self.add(&rhs.neg())
    }

    /// Exact negation.
    pub fn neg(&self) -> AffineForm {
        AffineForm {
            center: -self.center,
            terms: self.terms.iter().map(|&(s, a)| (s, -a)).collect(),
        }
    }

    /// Exact scaling by a constant.
    pub fn scale(&self, k: f64) -> AffineForm {
        if k == 0.0 {
            return AffineForm::constant(0.0);
        }
        AffineForm {
            center: self.center * k,
            terms: self.terms.iter().map(|&(s, a)| (s, a * k)).collect(),
        }
    }

    /// Exact translation by a constant.
    pub fn add_const(&self, k: f64) -> AffineForm {
        AffineForm {
            center: self.center + k,
            terms: self.terms.clone(),
        }
    }

    /// Product `self · rhs` for *independent or partially shared* forms:
    /// the affine part `ca·cb + ca·Lb + cb·La` is kept exactly and the
    /// bilinear residue `La·Lb ∈ [-ra·rb, ra·rb]` goes into a fresh symbol.
    ///
    /// For a self-product use [`AffineForm::sqr`], which exploits the
    /// perfect correlation to stay one-sided.
    pub fn mul(&self, rhs: &AffineForm, ctx: &mut SymbolCtx) -> AffineForm {
        let linear = self
            .scale(rhs.center)
            .add(&rhs.scale(self.center))
            .add_const(-self.center * rhs.center);
        let residue = self.radius() * rhs.radius();
        if residue == 0.0 {
            return linear;
        }
        linear.add(&AffineForm::with_fresh(0.0, residue, ctx))
    }

    /// Square of the form: `x² = c² + 2c·L + L²` with the quadratic part
    /// one-sided (`L² ∈ [0, r²]`), represented as `r²/2 + (r²/2)·ε` over a
    /// fresh symbol. Never dips below zero for a zero-centered form —
    /// unlike the interval product of two copies.
    pub fn sqr(&self, ctx: &mut SymbolCtx) -> AffineForm {
        let c = self.center;
        let r = self.radius();
        let linear = self.scale(2.0 * c).add_const(-c * c);
        if r == 0.0 {
            return linear;
        }
        let half = r * r / 2.0;
        linear.add(&AffineForm::with_fresh(half, half, ctx))
    }

    /// `n`-fold sum of *independent* draws from this form (the abstract
    /// image of accumulating a window): center and radius scale by `n`,
    /// correlation with the originating form is dropped.
    pub fn accumulate(&self, n: u32, ctx: &mut SymbolCtx) -> AffineForm {
        let nf = f64::from(n);
        AffineForm::with_fresh(self.center * nf, self.radius() * nf, ctx)
    }

    /// Tightens the form against an externally derived sound bound
    /// `[lo, hi]` (e.g. a relational moment inequality). The result covers
    /// the intersection of the two; if they do not overlap the original
    /// form is returned unchanged (the caller's bound is then vacuous).
    pub fn clamp_to(&self, lo: f64, hi: f64, ctx: &mut SymbolCtx) -> AffineForm {
        let (flo, fhi) = self.range();
        let (nlo, nhi) = (flo.max(lo), fhi.min(hi));
        if nlo > nhi {
            return self.clone();
        }
        if nlo == flo && nhi == fhi {
            return self.clone();
        }
        AffineForm::from_range(nlo, nhi, ctx)
    }
}

impl std::fmt::Display for AffineForm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.center, self.radius())?;
        if !self.terms.is_empty() {
            write!(f, " ({} syms)", self.terms.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> SymbolCtx {
        SymbolCtx::new()
    }

    #[test]
    fn self_difference_cancels_exactly() {
        let mut c = ctx();
        let x = AffineForm::from_range(-3.0, 5.0, &mut c);
        let d = x.sub(&x);
        assert_eq!(d.range(), (0.0, 0.0));
    }

    #[test]
    fn independent_difference_widens() {
        let mut c = ctx();
        let x = AffineForm::from_range(-3.0, 5.0, &mut c);
        let y = x.independent_copy(&mut c);
        let d = x.sub(&y);
        let (lo, hi) = d.range();
        assert!((lo + 8.0).abs() < 1e-12 && (hi - 8.0).abs() < 1e-12);
    }

    #[test]
    fn window_mean_deviation_has_reduced_radius() {
        // d = x₀ - (x₀+x₁+x₂+x₃)/4 over independent samples of radius r:
        // the affine cancellation leaves 2r(n-1)/n = 1.5r, not 2r.
        let mut c = ctx();
        let port = AffineForm::from_range(-1.0, 1.0, &mut c);
        let samples: Vec<AffineForm> = (0..4).map(|_| port.independent_copy(&mut c)).collect();
        let sum = samples
            .iter()
            .fold(AffineForm::constant(0.0), |acc, s| acc.add(s));
        let mean = sum.scale(0.25);
        let d = samples[0].sub(&mean);
        assert!((d.radius() - 1.5).abs() < 1e-12, "radius {}", d.radius());
        assert!(d.center().abs() < 1e-12);
    }

    #[test]
    fn sqr_of_zero_centered_form_is_one_sided() {
        let mut c = ctx();
        let x = AffineForm::from_range(-2.0, 2.0, &mut c);
        let sq = x.sqr(&mut c);
        let (lo, hi) = sq.range();
        assert!(lo.abs() < 1e-12, "lo {lo}");
        assert!((hi - 4.0).abs() < 1e-12, "hi {hi}");
    }

    #[test]
    fn sqr_matches_interval_on_offset_forms() {
        let mut c = ctx();
        let x = AffineForm::from_range(1.0, 3.0, &mut c);
        let sq = x.sqr(&mut c);
        let (lo, hi) = sq.range();
        // x² over [1,3] is [1,9]; the affine square gives 4 + 4ε₀ + [0,1],
        // i.e. [0,9] — sound, within a symbol of tight.
        assert!(lo <= 1.0 + 1e-12 && hi >= 9.0 - 1e-12);
        assert!(lo >= -1e-12 && hi <= 9.0 + 1e-12);
    }

    #[test]
    fn mul_keeps_linear_correlation() {
        let mut c = ctx();
        let x = AffineForm::from_range(0.0, 2.0, &mut c);
        // (x)·(3) must be exact.
        let p = x.mul(&AffineForm::constant(3.0), &mut c);
        assert_eq!(p.range(), (0.0, 6.0));
        // x·y over independent [0,2]×[0,2] ⊆ affine result.
        let y = x.independent_copy(&mut c);
        let q = x.mul(&y, &mut c);
        let (lo, hi) = q.range();
        assert!(lo <= 0.0 + 1e-12 && hi >= 4.0 - 1e-12);
    }

    #[test]
    fn accumulate_scales_center_and_radius() {
        let mut c = ctx();
        let x = AffineForm::from_range(-0.5, 1.25, &mut c);
        let acc = x.accumulate(100, &mut c);
        let (lo, hi) = acc.range();
        assert!((lo + 50.0).abs() < 1e-9 && (hi - 125.0).abs() < 1e-9);
    }

    #[test]
    fn clamp_to_tightens_and_ignores_disjoint_bounds() {
        let mut c = ctx();
        let x = AffineForm::from_range(-4.0, 4.0, &mut c);
        let t = x.clamp_to(0.0, 1.0, &mut c);
        assert_eq!(t.range(), (0.0, 1.0));
        let v = x.clamp_to(10.0, 20.0, &mut c);
        assert_eq!(v.range(), (-4.0, 4.0));
    }

    #[test]
    fn display_shows_center_and_radius() {
        let mut c = ctx();
        let x = AffineForm::from_range(-1.0, 3.0, &mut c);
        assert!(x.to_string().contains("1.0000 ± 2.0000"), "{x}");
    }
}
