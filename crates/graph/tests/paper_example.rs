//! Reproduces the worked s-t graph example of the paper's §3.2.2
//! (Figures 6 and 7): three features and one classifier.
//!
//! Energy of functional cells: E1 = 0.2, E2 = 0.8, E3 = 0.2, E4 = 0.3 nJ.
//! Output dimensions: d1 = 1, d2 = 1, d3 = 5 samples; source data d0 = 12
//! samples; all samples are 1 bit. Radio: Ct = 0.1 nJ/bit transmit,
//! Cr = 0.11 nJ/bit receive.

use xpro_graph::dinic::{FlowNetwork, INF};

struct PaperGraph {
    net: FlowNetwork,
    f: usize,
    b: usize,
    cells: [usize; 4],
}

fn build() -> PaperGraph {
    let mut net = FlowNetwork::new();
    let f = net.add_node(); // front-end sensor (source)
    let b = net.add_node(); // back-end aggregator (sink)
    let d = net.add_node(); // dummy raw-data node
    let c1 = net.add_node();
    let c2 = net.add_node();
    let c3 = net.add_node();
    let c4 = net.add_node();

    // F → D: energy of transmitting all 12 one-bit samples.
    net.add_edge(f, d, 12.0 * 0.1);
    // D → grouped cells reading the raw segment.
    for c in [c1, c2, c3] {
        net.add_edge(d, c, INF);
    }
    // Cells → B with their computation energy.
    net.add_edge(c1, b, 0.2);
    net.add_edge(c2, b, 0.8);
    net.add_edge(c3, b, 0.2);
    net.add_edge(c4, b, 0.3);
    // Dataflow feature → classifier: forward = tx, reverse = rx.
    for (c, dim) in [(c1, 1.0), (c2, 1.0), (c3, 5.0)] {
        net.add_edge(c, c4, dim * 0.1);
        net.add_edge(c4, c, dim * 0.11);
    }
    PaperGraph {
        net,
        f,
        b,
        cells: [c1, c2, c3, c4],
    }
}

/// Capacity of the all-in-aggregator cut (paper's Cut-1).
const CUT1_AGGREGATOR: f64 = 1.2;
/// Capacity of the all-in-sensor cut (paper's Cut-2).
const CUT2_SENSOR: f64 = 1.5;

#[test]
fn cut1_prices_the_in_aggregator_design() {
    let g = build();
    // Everything except F on the aggregator side.
    let mut side = vec![false; g.net.len()];
    side[g.f] = true;
    assert!((g.net.cut_value(&side) - CUT1_AGGREGATOR).abs() < 1e-9);
}

#[test]
fn cut2_prices_the_in_sensor_design() {
    let g = build();
    // Everything except B on the sensor side.
    let mut side = vec![true; g.net.len()];
    side[g.b] = false;
    assert!((g.net.cut_value(&side) - CUT2_SENSOR).abs() < 1e-9);
}

#[test]
fn min_cut_is_no_worse_than_either_extreme() {
    // §3.2.2: "The automatically generated XPro guarantees 'not worse'
    // solution than traditional approaches." With the example's numbers the
    // optimum coincides with the in-aggregator extreme (1.2 nJ).
    let g = build();
    let cut = g.net.min_cut(g.f, g.b);
    assert!(cut.capacity <= CUT1_AGGREGATOR + 1e-9);
    assert!(cut.capacity <= CUT2_SENSOR + 1e-9);
    assert!((cut.capacity - 1.2).abs() < 1e-9);
}

#[test]
fn grouped_cells_share_an_end() {
    // All three features read the raw segment, so an optimal partition never
    // splits them (the ∞ edges from D enforce it).
    let g = build();
    let cut = g.net.clone().min_cut(g.f, g.b);
    let sides: Vec<bool> = g.cells[..3].iter().map(|&c| cut.source_side[c]).collect();
    assert!(
        sides.iter().all(|&s| s == sides[0]),
        "grouped cells split: {sides:?}"
    );
}

#[test]
fn expensive_radio_pushes_cells_into_the_sensor() {
    // Same topology but a 10× more expensive radio: now computing
    // everything in-sensor (1.5 nJ) beats transmitting raw data (12 nJ),
    // and the min-cut must find it.
    let mut net = FlowNetwork::new();
    let f = net.add_node();
    let b = net.add_node();
    let d = net.add_node();
    let cells: Vec<usize> = (0..4).map(|_| net.add_node()).collect();
    net.add_edge(f, d, 12.0);
    for &c in &cells[..3] {
        net.add_edge(d, c, INF);
    }
    for (&c, e) in cells.iter().zip([0.2, 0.8, 0.2, 0.3]) {
        net.add_edge(c, b, e);
    }
    for (&c, dim) in cells[..3].iter().zip([1.0, 1.0, 5.0]) {
        net.add_edge(c, cells[3], dim);
        net.add_edge(cells[3], c, dim * 1.1);
    }
    let cut = net.min_cut(f, b);
    assert!((cut.capacity - 1.5).abs() < 1e-9);
    for &c in &cells {
        assert!(cut.source_side[c], "cell {c} should be in-sensor");
    }
}
