//! A wearable's wireless uplink as a lossy FIFO queue, with an optional
//! Gilbert–Elliott two-state burst model.
//!
//! One [`LossyLink`] models one half-duplex radio: a transmission attempt
//! occupies it for the frame's airtime whether or not it is delivered (the
//! receiver still has to wait out the corrupted frame); delivery is a
//! Bernoulli trial drawn from a seeded generator so runs are reproducible.
//! The sharded executor gives every node its own link (nodes interact only
//! through the aggregator, which is what makes the fleet shardable);
//! [`LossyLink::for_node`] derives the node's delivery stream from the run
//! seed so the draw sequence is a per-node property, independent of how
//! the fleet is sharded or how other nodes transmit.
//!
//! With a [`BurstProfile`] attached, the per-attempt drop rate is selected
//! by a two-state (good/bad) Markov chain advanced in fixed time slots.
//! The chain is driven by a *dedicated* RNG stream and advanced slot-by-
//! slot from t = 0, so the good/bad timeline is a pure function of the
//! seed and the profile — two runs with the same seed see the *same*
//! channel weather even when their executors make different numbers of
//! delivery draws (e.g. an adaptive run that retries less than a static
//! one). Channel weather is environmental and fleet-global: every node's
//! link carries an identical chain seeded from the *run* seed, so all
//! radios see the same good/bad timeline, and
//! [`LossyLink::weather_bad_s`] reports it without simulating traffic.
//! Only the per-attempt delivery draw comes from the link's main stream,
//! which also keeps an iid-configured link bit-identical to the historical
//! behavior.

use crate::rng::{stream_seed, XorShiftRng};

/// Salt XOR-ed into the link seed to derive the independent burst-state
/// stream.
const BURST_STREAM_SALT: u64 = 0xB1A5_7C4A_11E1_7B0D;

/// Salt for the per-node delivery-draw streams ([`LossyLink::for_node`]):
/// multiplied by `(node + 1)` and XOR-ed into the run seed, the same idiom
/// as the lifecycle streams.
const LINK_STREAM_SALT: u64 = 0xD6E8_FEB8_6659_FD93;

/// Parameters of the Gilbert–Elliott two-state channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstProfile {
    /// Per-attempt drop rate while the chain is in the good state.
    pub good_drop_rate: f64,
    /// Per-attempt drop rate while the chain is in the bad state.
    pub bad_drop_rate: f64,
    /// Per-slot probability of a good→bad transition.
    pub p_enter_bad: f64,
    /// Per-slot probability of a bad→good transition (zero makes a burst
    /// permanent — a degradation that never lifts).
    pub p_exit_bad: f64,
    /// Slot duration in seconds; the chain starts good at t = 0 and draws
    /// one transition per slot boundary.
    pub slot_s: f64,
}

/// Slot-clocked Gilbert–Elliott state machine.
#[derive(Clone, Debug)]
struct BurstState {
    profile: BurstProfile,
    rng: XorShiftRng,
    /// Index of the slot the current `in_bad` state is valid for.
    slot: u64,
    in_bad: bool,
    bad_s: f64,
}

impl BurstState {
    fn new(profile: BurstProfile, seed: u64) -> Self {
        BurstState {
            profile,
            rng: XorShiftRng::new(seed ^ BURST_STREAM_SALT),
            slot: 0,
            in_bad: false,
            bad_s: 0.0,
        }
    }

    /// Drop rate in effect at time `t_s`, advancing the chain as needed.
    /// Queries must be non-decreasing in time (the executor's virtual
    /// clock guarantees this); an earlier query reuses the current state.
    fn rate_at(&mut self, t_s: f64) -> f64 {
        let target = (t_s / self.profile.slot_s).floor().max(0.0) as u64;
        while self.slot < target {
            self.in_bad = if self.in_bad {
                !self.rng.chance(self.profile.p_exit_bad)
            } else {
                self.rng.chance(self.profile.p_enter_bad)
            };
            self.slot += 1;
            if self.in_bad {
                self.bad_s += self.profile.slot_s;
            }
        }
        if self.in_bad {
            self.profile.bad_drop_rate
        } else {
            self.profile.good_drop_rate
        }
    }
}

/// Outcome of one transmission attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Attempt {
    /// When the frame started occupying the channel.
    pub start_s: f64,
    /// When the channel freed up again.
    pub finish_s: f64,
    /// Whether the frame was delivered.
    pub delivered: bool,
}

/// A lossy, contended FIFO channel.
#[derive(Clone, Debug)]
pub struct LossyLink {
    drop_rate: f64,
    rng: XorShiftRng,
    burst: Option<BurstState>,
    free_at_s: f64,
    busy_s: f64,
    attempts: u64,
    drops: u64,
}

impl LossyLink {
    /// A channel with an iid per-attempt loss probability and an RNG seed.
    pub fn new(drop_rate: f64, seed: u64) -> Self {
        LossyLink {
            drop_rate,
            rng: XorShiftRng::new(seed),
            burst: None,
            free_at_s: 0.0,
            busy_s: 0.0,
            attempts: 0,
            drops: 0,
        }
    }

    /// A bursty channel: the drop rate in effect at each attempt's start
    /// time is chosen by the profile's slot-clocked Gilbert–Elliott chain.
    pub fn with_burst(profile: BurstProfile, seed: u64) -> Self {
        let mut link = LossyLink::new(profile.good_drop_rate, seed);
        link.burst = Some(BurstState::new(profile, seed));
        link
    }

    /// The radio of one fleet node: delivery draws come from a node-salted
    /// stream of the run seed (so the sequence each node sees is a pure
    /// per-node property, independent of sharding and of other nodes'
    /// traffic), while the optional burst chain is seeded from the run
    /// seed alone — every node's copy follows the identical, traffic-
    /// independent good/bad timeline (shared weather, per-node fading).
    pub fn for_node(drop_rate: f64, burst: Option<BurstProfile>, seed: u64, node: u64) -> Self {
        let mut link = LossyLink::new(drop_rate, stream_seed(seed, LINK_STREAM_SALT, node));
        link.burst = burst.map(|profile| BurstState::new(profile, seed));
        link
    }

    /// Time the burst chain spends in the bad state over `[0, duration_s]`
    /// slot boundaries, as a pure function of `(profile, seed)` — no
    /// traffic is simulated. This is the fleet-global channel weather every
    /// [`LossyLink::for_node`] link observes, and what the run report's
    /// `channel_bad_s` carries.
    pub fn weather_bad_s(profile: BurstProfile, seed: u64, duration_s: f64) -> f64 {
        let mut chain = BurstState::new(profile, seed);
        chain.rate_at(duration_s);
        chain.bad_s
    }

    /// Transmits one frame of `airtime_s` requested at `now_s`: the frame
    /// waits for the channel (FIFO), occupies it for the full airtime, and
    /// is delivered unless the loss draw fails.
    pub fn transmit(&mut self, now_s: f64, airtime_s: f64) -> Attempt {
        let start = now_s.max(self.free_at_s);
        let finish = start + airtime_s;
        self.free_at_s = finish;
        self.busy_s += airtime_s;
        self.attempts += 1;
        let rate = match &mut self.burst {
            Some(state) => state.rate_at(start),
            None => self.drop_rate,
        };
        let delivered = !self.rng.chance(rate);
        if !delivered {
            self.drops += 1;
        }
        Attempt {
            start_s: start,
            finish_s: finish,
            delivered,
        }
    }

    /// Earliest time the channel is idle again.
    pub fn free_at_s(&self) -> f64 {
        self.free_at_s
    }

    /// Cumulative time the channel carried frames.
    pub fn busy_s(&self) -> f64 {
        self.busy_s
    }

    /// Total transmission attempts so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Attempts lost to the drop draws.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Cumulative time the burst chain has spent in the bad state over the
    /// slots advanced so far (0 for an iid link).
    pub fn bad_s(&self) -> f64 {
        self.burst.as_ref().map_or(0.0, |b| b.bad_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_link_delivers_everything_fifo() {
        let mut link = LossyLink::new(0.0, 1);
        let a = link.transmit(0.0, 2.0);
        let b = link.transmit(1.0, 2.0); // requested while busy: queues
        assert!(a.delivered && b.delivered);
        assert_eq!(a.finish_s, 2.0);
        assert_eq!(b.start_s, 2.0);
        assert_eq!(b.finish_s, 4.0);
        assert_eq!(link.busy_s(), 4.0);
        assert_eq!(link.drops(), 0);
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let mut link = LossyLink::new(0.2, 42);
        for _ in 0..10_000 {
            link.transmit(0.0, 1e-6);
        }
        let rate = link.drops() as f64 / link.attempts() as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn dropped_frames_still_occupy_the_channel() {
        let mut link = LossyLink::new(0.999, 3);
        let before = link.free_at_s();
        link.transmit(before, 0.5);
        assert_eq!(link.free_at_s(), before + 0.5);
        assert_eq!(link.busy_s(), 0.5);
    }

    #[test]
    fn same_seed_reproduces_the_drop_pattern() {
        let mut a = LossyLink::new(0.5, 9);
        let mut b = LossyLink::new(0.5, 9);
        for _ in 0..200 {
            assert_eq!(
                a.transmit(0.0, 1e-6).delivered,
                b.transmit(0.0, 1e-6).delivered
            );
        }
    }

    fn stormy() -> BurstProfile {
        BurstProfile {
            good_drop_rate: 0.0,
            bad_drop_rate: 1.0 - 1e-12, // effectively always drops
            p_enter_bad: 0.2,
            p_exit_bad: 0.2,
            slot_s: 1.0,
        }
    }

    #[test]
    fn burst_chain_switches_between_both_rates() {
        let mut link = LossyLink::with_burst(stormy(), 77);
        let mut delivered = 0u64;
        for i in 0..2_000 {
            if link.transmit(i as f64 * 0.05, 1e-6).delivered {
                delivered += 1;
            }
        }
        // The chain must have visited both states: some frames delivered
        // (good slots), some dropped (bad slots).
        assert!(delivered > 0, "never left the bad state");
        assert!(link.drops() > 0, "never entered the bad state");
        assert!(link.bad_s() > 0.0);
        assert!(link.bad_s() < 100.0);
    }

    #[test]
    fn burst_timeline_is_traffic_independent() {
        // Two links with the same seed but wildly different attempt
        // patterns must agree on the state (= drop rate) at equal times.
        let profile = stormy();
        let mut sparse = LossyLink::with_burst(profile, 5);
        let mut dense = LossyLink::with_burst(profile, 5);
        for i in 0..200 {
            let t = i as f64 * 0.5;
            // Dense link draws many deliveries per slot; sparse only one.
            let mut dense_outcomes = Vec::new();
            for _ in 0..7 {
                dense_outcomes.push(dense.transmit(t, 1e-9).delivered);
            }
            let s = sparse.transmit(t, 1e-9).delivered;
            // With a ~1.0 bad rate and 0.0 good rate, the delivered flag
            // reveals the state: all-delivered = good, all-dropped = bad.
            let dense_all = dense_outcomes.iter().all(|d| *d);
            let dense_none = dense_outcomes.iter().all(|d| !*d);
            assert!(
                (s && dense_all) || (!s && dense_none),
                "state diverged at t={t}: sparse={s} dense={dense_outcomes:?}"
            );
        }
    }

    #[test]
    fn permanent_burst_never_recovers() {
        let profile = BurstProfile {
            good_drop_rate: 0.0,
            bad_drop_rate: 1.0 - 1e-12,
            p_enter_bad: 1.0,
            p_exit_bad: 0.0,
            slot_s: 0.5,
        };
        let mut link = LossyLink::with_burst(profile, 4);
        assert!(link.transmit(0.0, 1e-9).delivered); // slot 0 starts good
        for i in 1..50 {
            assert!(!link.transmit(i as f64, 1e-9).delivered);
        }
    }

    #[test]
    fn per_node_links_draw_distinct_delivery_streams() {
        let mut a = LossyLink::for_node(0.5, None, 9, 0);
        let mut b = LossyLink::for_node(0.5, None, 9, 1);
        let outcomes =
            |l: &mut LossyLink| (0..64).map(|_| l.transmit(0.0, 1e-9).delivered).collect();
        let oa: Vec<bool> = outcomes(&mut a);
        let ob: Vec<bool> = outcomes(&mut b);
        assert_ne!(oa, ob, "nodes must not share a delivery stream");
        let mut a2 = LossyLink::for_node(0.5, None, 9, 0);
        assert_eq!(oa, outcomes(&mut a2), "per-node stream must reproduce");
    }

    #[test]
    fn per_node_links_share_the_burst_timeline() {
        // Same seed, different nodes: the chain state (revealed by the
        // 0.0/~1.0 drop rates) must agree at equal times.
        let profile = stormy();
        let mut a = LossyLink::for_node(0.0, Some(profile), 5, 0);
        let mut b = LossyLink::for_node(0.0, Some(profile), 5, 3);
        for i in 0..200 {
            let t = i as f64 * 0.5;
            assert_eq!(
                a.transmit(t, 1e-9).delivered,
                b.transmit(t, 1e-9).delivered,
                "weather diverged at t={t}"
            );
        }
    }

    #[test]
    fn weather_bad_s_matches_a_driven_chain() {
        let profile = stormy();
        let mut link = LossyLink::with_burst(profile, 77);
        for i in 0..100 {
            link.transmit(i as f64, 1e-9);
        }
        // Driving traffic up to t advances the same chain the pure
        // function replays.
        assert_eq!(link.bad_s(), LossyLink::weather_bad_s(profile, 77, 99.0));
        assert_eq!(LossyLink::weather_bad_s(profile, 77, 0.0), 0.0);
    }

    #[test]
    fn burst_disabled_matches_plain_iid_link() {
        // A burst link whose two states share one rate must reproduce the
        // iid link draw-for-draw (delivery draws come from the same main
        // stream in the same order).
        let profile = BurstProfile {
            good_drop_rate: 0.3,
            bad_drop_rate: 0.3,
            p_enter_bad: 0.5,
            p_exit_bad: 0.5,
            slot_s: 0.1,
        };
        let mut bursty = LossyLink::with_burst(profile, 21);
        let mut iid = LossyLink::new(0.3, 21);
        for i in 0..500 {
            let t = i as f64 * 0.03;
            assert_eq!(
                bursty.transmit(t, 1e-9).delivered,
                iid.transmit(t, 1e-9).delivered
            );
        }
    }
}
