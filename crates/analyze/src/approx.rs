//! Approximation-budget calculus over the dual-run envelope analysis.
//!
//! An *approximate plan* replaces selected cells' exact kernels with
//! cheaper approximate variants ([`ApproxConfig`]: truncated Q16.16
//! multipliers, skipped deepest DWT level, pruned SVM-ensemble members).
//! This module proves, statically, that the end-to-end effect of a given
//! per-cell assignment stays inside a classification budget:
//!
//! 1. Two analysis runs bound each SVM cell's decision value: the exact
//!    run's envelope bounds `|exact fixed-point − ideal real|` and the
//!    approximate run's envelope ([`try_analyze_approx`], which injects
//!    each knob's worst-case deviation as fresh affine noise at the
//!    approximated cell) bounds `|approximate fixed-point − ideal real|`.
//!    By the triangle inequality their sum bounds the *observable*
//!    deviation `|approximate − exact|` of that decision value.
//! 2. A base classifier's ±1 vote flips only when the deviation exceeds
//!    the decision margin `|exact decision|`. The budget assumes a
//!    configured [`ApproxBudget::score_margin`] (validated empirically by
//!    the generator's cross-validated accuracy floor); any SVM whose
//!    deviation bound exceeds the margin is counted as *flippable*.
//! 3. The fused score is a weighted vote with weights in `[0, 1]`, so a
//!    flipped vote moves it by at most 2 and a pruned (abstaining) base by
//!    at most 1. The plan is **budget-proven** when the summed worst-case
//!    movement stays within [`ApproxBudget::fused_dev`].
//!
//! The calculus deliberately sits *above* the per-cell walk: SVM analysis
//! is decoupled from upstream feature ranges by the `MinMaxScaler` clamp
//! (inputs pinned to `[0, 1]`), so the per-SVM margins compose soundly
//! even when a deep feature cell upstream carries a wide envelope. A
//! possible overflow in any SVM or fusion cell of either run voids the
//! envelope argument and yields [`ApproxVerdict::Unprovable`].
//!
//! Verdicts are exported as `approx.*` findings at synthetic cell indices
//! ≥ [`APPROX_CELL_BASE`] through the same gate as the range and
//! timing/energy families.

use crate::analysis::{
    try_analyze, try_analyze_approx, AnalysisReport, AnalyzeError, AnalyzeOptions, CellSpec,
    SignalBounds,
};
use crate::gate::{Finding, Severity, APPROX_CELL_BASE};
use std::collections::BTreeMap;
use xpro_hw::{ApproxConfig, ModuleKind};

/// One ulp of the Q16.16 format in value units.
const ULP: f64 = 1.0 / 65536.0;

/// The classification-deviation budget an approximate plan must prove.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApproxBudget {
    /// Assumed minimum magnitude of each base SVM's exact decision value
    /// on in-distribution inputs, in value units. A base whose statically
    /// bounded deviation stays below this margin cannot flip its vote.
    /// The generator validates the assumption empirically via the
    /// cross-validated accuracy floor.
    pub score_margin: f64,
    /// Maximum tolerated worst-case movement of the fused score, in vote
    /// units (a flipped vote moves it by 2, a pruned base by 1).
    pub fused_dev: f64,
}

impl Default for ApproxBudget {
    fn default() -> Self {
        ApproxBudget {
            score_margin: 0.25,
            fused_dev: 1.0,
        }
    }
}

impl ApproxBudget {
    /// Validates both fields against NaN, infinities, and sign errors.
    ///
    /// # Errors
    ///
    /// [`AnalyzeError::InvalidOption`] naming the offending field.
    pub fn validate(&self) -> Result<(), AnalyzeError> {
        if !(self.score_margin.is_finite() && self.score_margin > 0.0) {
            return Err(AnalyzeError::InvalidOption {
                name: "score_margin",
                value: self.score_margin,
            });
        }
        if !(self.fused_dev.is_finite() && self.fused_dev >= 0.0) {
            return Err(AnalyzeError::InvalidOption {
                name: "fused_dev",
                value: self.fused_dev,
            });
        }
        Ok(())
    }
}

/// Outcome of the budget proof for one assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApproxVerdict {
    /// Every SVM and fusion cell is overflow-free in both runs and the
    /// worst-case fused-score movement stays within the budget.
    BudgetProven,
    /// The envelopes are sound but the worst-case fused-score movement
    /// exceeds the budget.
    BudgetExceeded,
    /// Some SVM or fusion cell may saturate in one of the runs, voiding
    /// the envelope argument entirely.
    Unprovable,
}

impl ApproxVerdict {
    /// The gate rule id for this verdict.
    pub fn rule(self) -> &'static str {
        match self {
            ApproxVerdict::BudgetProven => "approx.budget_proven",
            ApproxVerdict::BudgetExceeded => "approx.budget_exceeded",
            ApproxVerdict::Unprovable => "approx.unprovable",
        }
    }

    /// The gate severity for this verdict.
    pub fn severity(self) -> Severity {
        match self {
            ApproxVerdict::BudgetProven => Severity::Proven,
            ApproxVerdict::BudgetExceeded => Severity::Violation,
            ApproxVerdict::Unprovable => Severity::MayOverflow,
        }
    }
}

impl std::fmt::Display for ApproxVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ApproxVerdict::BudgetProven => "budget proven",
            ApproxVerdict::BudgetExceeded => "budget exceeded",
            ApproxVerdict::Unprovable => "unprovable",
        })
    }
}

/// Static deviation account of one base SVM under the assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct SvmDeviation {
    /// Cell index of the SVM in the graph.
    pub cell: usize,
    /// The SVM cell's label.
    pub label: String,
    /// Sound bound on `|approximate − exact|` of the decision value, in
    /// value units (sum of both runs' envelopes).
    pub dev_value: f64,
    /// Whether the assignment prunes this base entirely.
    pub pruned: bool,
    /// Whether the deviation bound exceeds the score margin, so the ±1
    /// vote may flip.
    pub flippable: bool,
}

/// Result of the budget calculus for one per-cell assignment.
#[derive(Clone, Debug)]
pub struct ApproxAnalysis {
    /// The proof outcome.
    pub verdict: ApproxVerdict,
    /// Worst-case movement of the fused score in vote units
    /// (`2·flipped + 1·pruned`).
    pub fused_dev: f64,
    /// The budget the calculus ran against.
    pub budget: ApproxBudget,
    /// Per-SVM deviation accounts, in graph order.
    pub svm: Vec<SvmDeviation>,
    /// The exact run's full report.
    pub exact: AnalysisReport,
    /// The approximate run's full report (with injected deviations).
    pub approx: AnalysisReport,
}

impl ApproxAnalysis {
    /// Number of pruned bases under the assignment.
    pub fn pruned(&self) -> usize {
        self.svm.iter().filter(|s| s.pruned).count()
    }

    /// Number of flippable (non-pruned) bases under the assignment.
    pub fn flippable(&self) -> usize {
        self.svm.iter().filter(|s| s.flippable && !s.pruned).count()
    }

    /// Sound per-cell deviation envelope in value units: the sum of the
    /// exact and approximate runs' port-0 error envelopes. The runtime
    /// soundness monitor compares observed deviations against this.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn deviation_envelope(&self, cell: usize) -> f64 {
        (self.exact.cells[cell].output().err_ulps + self.approx.cells[cell].output().err_ulps) * ULP
    }
}

/// Runs the exact and injected analyses and proves (or refutes) the
/// fused-score budget for `assignment`.
///
/// # Errors
///
/// Returns an [`AnalyzeError`] when the bounds, options, budget, or any
/// assigned [`ApproxConfig`] are invalid.
///
/// # Panics
///
/// Panics if the cell list is not topologically ordered.
pub fn analyze_approx_budget(
    cells: &[CellSpec],
    input: SignalBounds,
    opts: &AnalyzeOptions,
    assignment: &BTreeMap<usize, ApproxConfig>,
    budget: &ApproxBudget,
) -> Result<ApproxAnalysis, AnalyzeError> {
    budget.validate()?;
    let exact = try_analyze(cells, input, opts)?;
    let approx = try_analyze_approx(cells, input, opts, assignment)?;

    // Taint: a knob applied *upstream* of the feature layer (the skipped
    // DWT level) deviates the features feeding an SVM. The scaler clamp
    // keeps those inputs range-bounded in [0, 1] — so the envelopes stay
    // sound — but the per-SVM *margin* argument does not compose through
    // the data-dependent scaler slope, so any SVM transitively reading an
    // approximated non-SVM cell must be counted as flippable outright.
    let mut tainted = vec![false; cells.len()];
    for (i, cell) in cells.iter().enumerate() {
        let own = assignment
            .get(&i)
            .map(|cfg| cfg.effective_for(&cell.module).dwt_skip)
            .unwrap_or(false);
        tainted[i] = own
            || cell
                .inputs
                .iter()
                .any(|&(producer, _)| producer.is_some_and(|p| tainted[p]));
    }

    let mut svm = Vec::new();
    let mut decision_sound = true;
    for (i, cell) in cells.iter().enumerate() {
        let is_svm = matches!(cell.module, ModuleKind::Svm { .. });
        let is_fusion = matches!(cell.module, ModuleKind::ScoreFusion { .. });
        if !is_svm && !is_fusion {
            continue;
        }
        if !exact.cells[i].verdict.is_overflow_free() || !approx.cells[i].verdict.is_overflow_free()
        {
            decision_sound = false;
        }
        if is_svm {
            let eff = assignment
                .get(&i)
                .map(|cfg| cfg.effective_for(&cell.module))
                .unwrap_or(ApproxConfig::EXACT);
            let dev_value =
                (exact.cells[i].output().err_ulps + approx.cells[i].output().err_ulps) * ULP;
            svm.push(SvmDeviation {
                cell: i,
                label: cell.label.clone(),
                dev_value,
                pruned: eff.svm_prune,
                flippable: !eff.svm_prune && (tainted[i] || dev_value > budget.score_margin),
            });
        }
    }

    let fused_dev = svm
        .iter()
        .map(|s| {
            if s.pruned {
                1.0
            } else if s.flippable {
                2.0
            } else {
                0.0
            }
        })
        .sum::<f64>();
    let verdict = if !decision_sound {
        ApproxVerdict::Unprovable
    } else if fused_dev <= budget.fused_dev {
        ApproxVerdict::BudgetProven
    } else {
        ApproxVerdict::BudgetExceeded
    };

    Ok(ApproxAnalysis {
        verdict,
        fused_dev,
        budget: *budget,
        svm,
        exact,
        approx,
    })
}

/// Renders one budget-calculus outcome as a gate finding at a synthetic
/// cell index `APPROX_CELL_BASE + slot`, labeled `approx@<level>`.
pub fn approx_finding(
    config: &str,
    slot: usize,
    level: &str,
    analysis: &ApproxAnalysis,
) -> Finding {
    let worst_dev = analysis.svm.iter().map(|s| s.dev_value).fold(0.0, f64::max);
    Finding {
        config: config.to_string(),
        cell: APPROX_CELL_BASE + slot,
        label: format!("approx@{level}"),
        rule: analysis.verdict.rule().to_string(),
        severity: analysis.verdict.severity(),
        bound: analysis.fused_dev,
        interval_width: worst_dev,
        affine_width: analysis.budget.fused_dev,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;
    use crate::analysis::Verdict;

    fn svm_cell(label: &str) -> CellSpec {
        CellSpec {
            module: ModuleKind::Svm {
                support_vectors: 40,
                dims: 12,
                rbf: true,
            },
            inputs: vec![(None, 0)],
            label: label.to_string(),
        }
    }

    fn graph(bases: usize) -> Vec<CellSpec> {
        let mut cells: Vec<CellSpec> = (0..bases).map(|b| svm_cell(&format!("SVM{b}"))).collect();
        cells.push(CellSpec {
            module: ModuleKind::ScoreFusion { bases },
            inputs: (0..bases).map(|b| (Some(b), 0)).collect(),
            label: "Fusion".to_string(),
        });
        cells
    }

    #[test]
    fn exact_assignment_is_trivially_proven() {
        let cells = graph(4);
        let a = analyze_approx_budget(
            &cells,
            SignalBounds::default(),
            &AnalyzeOptions::default(),
            &BTreeMap::new(),
            &ApproxBudget::default(),
        )
        .unwrap();
        assert_eq!(a.verdict, ApproxVerdict::BudgetProven);
        assert_eq!(a.fused_dev, 0.0);
        assert_eq!(a.svm.len(), 4);
        assert!(a.svm.iter().all(|s| !s.pruned && !s.flippable));
    }

    #[test]
    fn injected_error_grows_the_envelope_monotonically() {
        let cells = graph(2);
        let opts = AnalyzeOptions::default();
        let mut assignment = BTreeMap::new();
        assignment.insert(
            0,
            ApproxConfig {
                mul_truncation_bits: 4,
                ..ApproxConfig::EXACT
            },
        );
        let exact = try_analyze(&cells, SignalBounds::default(), &opts).unwrap();
        let inj = try_analyze_approx(&cells, SignalBounds::default(), &opts, &assignment).unwrap();
        assert!(
            inj.cells[0].output().err_ulps > exact.cells[0].output().err_ulps,
            "truncation must inflate the envelope"
        );
        assert_eq!(
            inj.cells[1].output().err_ulps,
            exact.cells[1].output().err_ulps,
            "unassigned cells are untouched"
        );
    }

    #[test]
    fn aggressive_truncation_exceeds_the_budget() {
        let cells = graph(4);
        let mut assignment = BTreeMap::new();
        for i in 0..4 {
            assignment.insert(
                i,
                ApproxConfig {
                    mul_truncation_bits: 12,
                    ..ApproxConfig::EXACT
                },
            );
        }
        let a = analyze_approx_budget(
            &cells,
            SignalBounds::default(),
            &AnalyzeOptions::default(),
            &assignment,
            &ApproxBudget::default(),
        )
        .unwrap();
        // 40·(2^12·(1+1+12) + 4) ulps ≈ 35 value units per base: every vote
        // is flippable, so the fused score can move by 8 ≫ 1.
        assert_eq!(a.verdict, ApproxVerdict::BudgetExceeded);
        assert_eq!(a.flippable(), 4);
        assert!(a.fused_dev >= 8.0);
    }

    #[test]
    fn pruning_within_budget_is_proven() {
        let cells = graph(4);
        let mut assignment = BTreeMap::new();
        assignment.insert(
            3,
            ApproxConfig {
                svm_prune: true,
                ..ApproxConfig::EXACT
            },
        );
        let a = analyze_approx_budget(
            &cells,
            SignalBounds::default(),
            &AnalyzeOptions::default(),
            &assignment,
            &ApproxBudget::default(),
        )
        .unwrap();
        assert_eq!(a.verdict, ApproxVerdict::BudgetProven);
        assert_eq!(a.pruned(), 1);
        assert_eq!(a.fused_dev, 1.0);
    }

    #[test]
    fn upstream_dwt_skip_taints_downstream_svms() {
        // DWT → SVM0 → fusion, plus an independent SVM1. Skipping the DWT
        // level deviates SVM0's *inputs*; the margin argument does not
        // compose through the scaler, so SVM0 must count as flippable even
        // though its own kernel is exact. SVM1 is untouched.
        let cells = vec![
            CellSpec {
                module: ModuleKind::DwtLevel {
                    input_len: 64,
                    taps: 2,
                },
                inputs: vec![(None, 0)],
                label: "DWT-L1".to_string(),
            },
            CellSpec {
                inputs: vec![(Some(0), 0)],
                ..svm_cell("SVM0")
            },
            svm_cell("SVM1"),
            CellSpec {
                module: ModuleKind::ScoreFusion { bases: 2 },
                inputs: vec![(Some(1), 0), (Some(2), 0)],
                label: "Fusion".to_string(),
            },
        ];
        let mut assignment = BTreeMap::new();
        assignment.insert(
            0,
            ApproxConfig {
                dwt_skip: true,
                ..ApproxConfig::EXACT
            },
        );
        let a = analyze_approx_budget(
            &cells,
            SignalBounds::default(),
            &AnalyzeOptions::default(),
            &assignment,
            &ApproxBudget::default(),
        )
        .unwrap();
        let svm0 = a.svm.iter().find(|s| s.label == "SVM0").unwrap();
        let svm1 = a.svm.iter().find(|s| s.label == "SVM1").unwrap();
        assert!(svm0.flippable, "tainted SVM must be flippable");
        assert!(!svm1.flippable, "independent SVM stays exact");
        assert_eq!(a.verdict, ApproxVerdict::BudgetExceeded);
    }

    #[test]
    fn overflowing_decision_layer_is_unprovable() {
        // A coefficient bound large enough to saturate the accumulating
        // SVM sum drives the decision layer past the rails.
        let cells = graph(1);
        let opts = AnalyzeOptions {
            svm_coef_bound: 40_000.0,
            ..AnalyzeOptions::default()
        };
        let exact = try_analyze(&cells, SignalBounds::default(), &opts).unwrap();
        if exact.cells[0].verdict.is_overflow_free() {
            // The transfer absorbed it; nothing to assert against.
            return;
        }
        let a = analyze_approx_budget(
            &cells,
            SignalBounds::default(),
            &opts,
            &BTreeMap::new(),
            &ApproxBudget::default(),
        )
        .unwrap();
        assert_eq!(a.verdict, ApproxVerdict::Unprovable);
        assert!(matches!(
            a.exact.cells[0].verdict,
            Verdict::MayOverflow { .. }
        ));
    }

    #[test]
    fn finding_carries_rule_and_synthetic_index() {
        let cells = graph(2);
        let a = analyze_approx_budget(
            &cells,
            SignalBounds::default(),
            &AnalyzeOptions::default(),
            &BTreeMap::new(),
            &ApproxBudget::default(),
        )
        .unwrap();
        let f = approx_finding("default", 1, "svm-trunc4", &a);
        assert_eq!(f.cell, APPROX_CELL_BASE + 1);
        assert_eq!(f.rule, "approx.budget_proven");
        assert_eq!(f.label, "approx@svm-trunc4");
        assert_eq!(f.severity, Severity::Proven);
    }

    #[test]
    fn budget_rejects_nonsense() {
        let bad = ApproxBudget {
            score_margin: 0.0,
            fused_dev: 1.0,
        };
        assert!(bad.validate().is_err());
        let nan = ApproxBudget {
            score_margin: 0.25,
            fused_dev: f64::NAN,
        };
        assert!(nan.validate().is_err());
    }
}
