//! Energy–delay Pareto frontier of the delay-constrained generator
//! (extends ablation A4): sweep the delay limit from just above the
//! theoretical floor up past the paper's `min(T_F, T_B)` default, and report
//! the minimum sensor energy at each point.
//!
//! Run: `cargo run --release -p xpro-bench --bin pareto [--paper]`

use xpro_bench::{fmt, paper_mode, print_table, train_case};
use xpro_core::config::SystemConfig;
use xpro_core::partition::evaluate;
use xpro_core::XProGenerator;
use xpro_data::CaseId;

fn main() {
    let t = train_case(CaseId::E1, paper_mode());
    let inst = t.instance(SystemConfig::default());
    let generator = XProGenerator::new(&inst);
    let default_limit = generator.default_delay_limit();

    let header: Vec<String> = [
        "delay limit",
        "feasible",
        "energy (uJ)",
        "achieved delay",
        "cells in-sensor",
    ]
    .iter()
    .map(std::string::ToString::to_string)
    .collect();
    let mut rows = Vec::new();
    for fraction in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2, 1.5, 2.0] {
        let limit = default_limit * fraction;
        match generator.delay_constrained_cut(limit) {
            Ok(p) => {
                let e = evaluate(&inst, &p);
                rows.push(vec![
                    format!("{:.2}ms ({fraction:.1}x)", limit * 1e3),
                    "yes".into(),
                    fmt(e.sensor.total_pj() / 1e6),
                    format!("{:.2}ms", e.delay.total_s() * 1e3),
                    format!("{}/{}", p.sensor_count(), inst.num_cells()),
                ]);
            }
            Err(_) => rows.push(vec![
                format!("{:.2}ms ({fraction:.1}x)", limit * 1e3),
                "no".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    print_table(
        "Energy-delay Pareto frontier, case E1 (limits relative to min(T_F, T_B))",
        &header,
        &rows,
    );
    println!(
        "\ntightening the limit trades sensor energy for latency until no cut fits;\n\
         loosening past the Eq.-4 default stops helping once the unconstrained\n\
         minimum-energy cut becomes feasible."
    );
}
