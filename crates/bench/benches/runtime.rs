//! Criterion bench for the streaming executor: wall-clock cost of
//! simulating a fleet through the discrete-event runtime, at zero loss and
//! under fault injection. Besides the ns/iter report, writes
//! `BENCH_runtime.json` at the workspace root (virtual-seconds-per-wall-
//! second and segment throughput per scenario, plus a nodes × shards
//! scaling sweep) for the perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;
use xpro_core::config::SystemConfig;
use xpro_core::instance::XProInstance;
use xpro_core::pipeline::{PipelineConfig, XProPipeline};
use xpro_core::{plan_approximate, ApproxPlanOptions, Partition, XProGenerator};
use xpro_data::{generate_case_sized, CaseId};
use xpro_ml::SubspaceConfig;
use xpro_runtime::{ExecutorBuilder, FleetSpec, RunHandle, RunReport, RuntimeConfig, TenantSpec};

fn trained_instance() -> XProInstance {
    let data = generate_case_sized(CaseId::C1, 60, 42);
    let cfg = PipelineConfig::builder()
        .subspace(SubspaceConfig {
            candidates: 10,
            keep_fraction: 0.3,
            min_keep: 3,
            folds: 2,
            ..SubspaceConfig::default()
        })
        .build()
        .expect("valid config");
    let pipeline = XProPipeline::train(&data, &cfg).expect("trains");
    let segment_len = pipeline.segment_len();
    XProInstance::try_new(pipeline.into_built(), SystemConfig::default(), segment_len)
        .expect("valid instance")
}

fn run_config(nodes: usize, drop_rate: f64, virtual_s: f64) -> RuntimeConfig {
    RuntimeConfig::builder()
        .nodes(nodes)
        .duration_s(virtual_s)
        .drop_rate(drop_rate)
        .seed(7)
        .build()
        .expect("valid config")
}

fn run_sharded(
    inst: &XProInstance,
    cut: &Partition,
    cfg: &RuntimeConfig,
    shards: usize,
) -> RunReport {
    run_handle(inst, cut, cfg, shards).report
}

fn run_handle(
    inst: &XProInstance,
    cut: &Partition,
    cfg: &RuntimeConfig,
    shards: usize,
) -> RunHandle {
    ExecutorBuilder::new(FleetSpec::new(inst, cut, cfg.clone()).expect("valid spec"))
        .shards(shards)
        .build()
        .expect("valid build")
        .run()
}

/// One measured scenario for `BENCH_runtime.json`.
struct Scenario {
    name: &'static str,
    nodes: usize,
    drop_rate: f64,
    virtual_s: f64,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "lossless_1node",
        nodes: 1,
        drop_rate: 0.0,
        virtual_s: 10.0,
    },
    Scenario {
        name: "fleet4_drop10",
        nodes: 4,
        drop_rate: 0.1,
        virtual_s: 10.0,
    },
    Scenario {
        name: "fleet16_drop30",
        nodes: 16,
        drop_rate: 0.3,
        virtual_s: 10.0,
    },
];

/// The nodes axis of the scaling sweep: `(fleet size, virtual seconds,
/// timed repetitions)`. Virtual time shrinks as the fleet grows so every
/// point stays inside a bench-friendly wall budget; repetitions shrink
/// with it because big fleets time stably (millions of events per run).
const SWEEP: &[(usize, f64, usize)] = &[
    (1, 10.0, 5),
    (100, 10.0, 5),
    (1_000, 5.0, 4),
    (10_000, 3.0, 4),
    (100_000, 2.0, 1),
];

/// The shards axis of the scaling sweep.
const SHARD_COUNTS: &[usize] = &[1, 2, 4, 8];

fn median_wall_ns(
    inst: &XProInstance,
    cut: &Partition,
    cfg: &RuntimeConfig,
    shards: usize,
    reps: usize,
) -> (f64, u64) {
    let mut wall_ns = Vec::new();
    let mut completed = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        let report = run_sharded(inst, cut, cfg, shards);
        wall_ns.push(start.elapsed().as_nanos() as f64);
        completed = report.total_completed();
    }
    wall_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (wall_ns[wall_ns.len() / 2], completed)
}

/// Times each scenario directly (the vendored criterion stand-in keeps no
/// machine-readable output) and writes the JSON trajectory file, including
/// the nodes × shards sweep that pins the per-shard event wheels' scaling:
/// at large fleets the sharded runs must beat the single wheel even on one
/// core, because N small heaps sift shallower than one giant heap and each
/// shard's working set stays cache-resident for its whole round.
fn write_trajectory(inst: &XProInstance, cut: &Partition) {
    let mut entries = Vec::new();
    for s in SCENARIOS {
        let cfg = run_config(s.nodes, s.drop_rate, s.virtual_s);
        // Warm-up run, then median of five timed runs.
        let _ = run_sharded(inst, cut, &cfg, 1);
        let (median_ns, completed) = median_wall_ns(inst, cut, &cfg, 1, 5);
        entries.push(format!(
            concat!(
                "    {{\"scenario\": \"{}\", \"nodes\": {}, \"drop_rate\": {}, ",
                "\"virtual_s\": {}, \"wall_ns_per_run\": {:.0}, ",
                "\"segments_completed\": {}, \"segments_per_wall_s\": {:.0}, ",
                "\"speedup_over_realtime\": {:.1}}}"
            ),
            s.name,
            s.nodes,
            s.drop_rate,
            s.virtual_s,
            median_ns,
            completed,
            completed as f64 / (median_ns * 1e-9),
            s.virtual_s / (median_ns * 1e-9),
        ));
    }

    let mut sweep_entries = Vec::new();
    for &(nodes, virtual_s, reps) in SWEEP {
        let cfg = run_config(nodes, 0.05, virtual_s);
        // `reps` interleaved rounds, each timing every shard count once
        // and keeping the per-count minimum. Every timed run is preceded
        // by an identical untimed warm-up so it starts from the heap and
        // page state its own allocation pattern leaves behind — without
        // this, each config inherits whatever the *previous, differently
        // shaped* config left in the allocator, which at 100k nodes
        // (gigabyte-scale run state) swings timings by 2×. Interleaving
        // spreads machine drift evenly across shard counts; the minimum
        // discards interference spikes — a per-count median can do
        // neither, because each count's repetitions cluster in time.
        let mut best_ns = vec![f64::INFINITY; SHARD_COUNTS.len()];
        let mut completed = 0u64;
        for _ in 0..reps {
            for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
                let _ = run_sharded(inst, cut, &cfg, shards);
                let start = Instant::now();
                let report = run_sharded(inst, cut, &cfg, shards);
                let ns = start.elapsed().as_nanos() as f64;
                best_ns[i] = best_ns[i].min(ns);
                completed = report.total_completed();
            }
        }
        let one_shard_ns = best_ns[0];
        for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
            let wall_ns = best_ns[i];
            sweep_entries.push(format!(
                concat!(
                    "    {{\"nodes\": {}, \"shards\": {}, \"virtual_s\": {}, ",
                    "\"wall_ns_per_run\": {:.0}, \"segments_completed\": {}, ",
                    "\"segments_per_wall_s\": {:.0}, \"speedup_over_1shard\": {:.3}}}"
                ),
                nodes,
                shards,
                virtual_s,
                wall_ns,
                completed,
                completed as f64 / (wall_ns * 1e-9),
                one_shard_ns / wall_ns,
            ));
        }
    }

    // Tenants × nodes sweep: the admission layer (token buckets,
    // weighted-fair inbox accounting, barrier-round tier machine) prices
    // every aggregator job, so its overhead is measured against the
    // tenancy-off run of the same fleet. Half the tenants are metered
    // below the offered rate, keeping rejection, degradation and
    // quarantine on the hot path rather than benching the all-admitted
    // fast path.
    let mut tenant_entries = Vec::new();
    for &nodes in &[8usize, 64, 512] {
        let cfg_off = run_config(nodes, 0.05, 2.0);
        let _ = run_sharded(inst, cut, &cfg_off, 1);
        let (off_ns, _) = median_wall_ns(inst, cut, &cfg_off, 1, 3);
        for &tenants in &[1usize, 4, 16] {
            if tenants > nodes {
                continue;
            }
            let table = tenant_table(nodes, tenants);
            let cfg_on = RuntimeConfig::builder()
                .nodes(nodes)
                .duration_s(2.0)
                .drop_rate(0.05)
                .seed(7)
                .tenants(table)
                .build()
                .expect("valid tenant config");
            let _ = run_sharded(inst, cut, &cfg_on, 1);
            let (on_ns, completed) = median_wall_ns(inst, cut, &cfg_on, 1, 3);
            tenant_entries.push(format!(
                concat!(
                    "    {{\"nodes\": {}, \"tenants\": {}, \"virtual_s\": 2.0, ",
                    "\"wall_ns_per_run\": {:.0}, \"segments_completed\": {}, ",
                    "\"overhead_vs_no_tenancy\": {:.3}}}"
                ),
                nodes,
                tenants,
                on_ns,
                completed,
                on_ns / off_ns,
            ));
        }
    }

    // Telemetry-memory sweep: per-node latency telemetry is a fixed-size
    // quantile sketch, so the bytes held at digest time must stay flat
    // per node from 1 to 100k nodes, while the raw-sample buffering the
    // sketch replaced would have grown with every completed segment
    // (8 bytes each, fleet-wide). Memory is deterministic — one run per
    // point, no timing statistics needed.
    let mut telemetry_entries = Vec::new();
    for &(nodes, virtual_s, _) in SWEEP {
        let cfg = run_config(nodes, 0.05, virtual_s);
        let handle = run_handle(inst, cut, &cfg, 1);
        let completed = handle.report.total_completed();
        telemetry_entries.push(format!(
            concat!(
                "    {{\"nodes\": {}, \"virtual_s\": {}, \"segments_completed\": {}, ",
                "\"telemetry_bytes\": {}, \"bytes_per_node\": {:.1}, ",
                "\"raw_sample_equiv_bytes\": {}}}"
            ),
            nodes,
            virtual_s,
            completed,
            handle.telemetry_bytes,
            handle.telemetry_bytes as f64 / nodes as f64,
            completed * 8,
        ));
    }

    // Quality–energy frontier: the approximate planner swept across
    // accuracy floors. Deterministic (fixed seeds, static proofs, exact
    // CV) — one planning pass per point, no timing statistics needed.
    let quality_entries = quality_energy_entries();

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"runtime_executor\",\n  \"scenarios\": [\n{}\n  ],\n",
            "  \"shard_sweep\": [\n{}\n  ],\n  \"tenant_sweep\": [\n{}\n  ],\n",
            "  \"telemetry_sweep\": [\n{}\n  ],\n  \"quality_energy_sweep\": [\n{}\n  ]\n}}\n"
        ),
        entries.join(",\n"),
        sweep_entries.join(",\n"),
        tenant_entries.join(",\n"),
        telemetry_entries.join(",\n"),
        quality_entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: failed to write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

/// The quality–energy frontier of the approximate planner: every
/// Table-1 case × accuracy floor, recording which ladder rung wins, the
/// cross-validated accuracies of both execution paths and the sensor
/// energy bill against the exact plan's. A floor of `0.0` forces the
/// planner to be free (the approximate path must match the exact CV
/// accuracy outright); widening floors trade verified accuracy headroom
/// for sensor energy.
fn quality_energy_entries() -> Vec<String> {
    let mut out = Vec::new();
    for case in xpro_data::CaseId::ALL {
        let data = generate_case_sized(case, 90, 42);
        let cfg = PipelineConfig::builder()
            .subspace(SubspaceConfig {
                candidates: 10,
                features_per_base: 8,
                keep_fraction: 0.3,
                min_keep: 3,
                folds: 2,
                ..SubspaceConfig::default()
            })
            .build()
            .expect("valid config");
        let pipeline = XProPipeline::train(&data, &cfg).expect("trains");
        for &floor in &[0.0f64, 0.01, 0.02, 0.05] {
            let opts = ApproxPlanOptions {
                max_accuracy_drop: floor,
                ..ApproxPlanOptions::default()
            };
            let plan =
                plan_approximate(&pipeline, &data, SystemConfig::default(), &opts).expect("plans");
            out.push(format!(
                concat!(
                    "    {{\"case\": \"{}\", \"max_accuracy_drop\": {}, \"level\": \"{}\", ",
                    "\"cv_exact_accuracy\": {:.4}, \"cv_approx_accuracy\": {:.4}, ",
                    "\"sensor_pj\": {:.1}, \"exact_sensor_pj\": {:.1}, ",
                    "\"energy_saving\": {:.4}}}"
                ),
                case.symbol(),
                floor,
                plan.level.map_or("exact".to_string(), |l| l.to_string()),
                plan.cv_exact_accuracy,
                plan.cv_approx_accuracy,
                plan.sensor_pj,
                plan.exact_sensor_pj,
                plan.energy_saving(),
            ));
        }
    }
    out
}

/// An even split of `nodes` across `tenants`, alternating unmetered and
/// tightly metered (degrading, breaker-armed) tenants.
fn tenant_table(nodes: usize, tenants: usize) -> Vec<TenantSpec> {
    let base = nodes / tenants;
    let extra = nodes % tenants;
    (0..tenants)
        .map(|i| {
            let share = base + usize::from(i < extra);
            let spec = TenantSpec::new(format!("t{i}"), share);
            if i % 2 == 1 {
                spec.quota_hz(2.0)
                    .quota_burst(2)
                    .breaker_rounds(2)
                    .cooldown_s(0.5)
            } else {
                spec.degrade(false)
            }
        })
        .collect()
}

fn bench_runtime(c: &mut Criterion) {
    let inst = trained_instance();
    let cut = XProGenerator::new(&inst).generate().expect("cross-end cut");

    let mut group = c.benchmark_group("runtime_executor");
    for s in SCENARIOS {
        let cfg = run_config(s.nodes, s.drop_rate, 2.0);
        group.bench_with_input(BenchmarkId::new("run", s.name), &cfg, |b, cfg| {
            b.iter(|| run_sharded(&inst, &cut, cfg, 1));
        });
    }
    group.finish();

    write_trajectory(&inst, &cut);
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
