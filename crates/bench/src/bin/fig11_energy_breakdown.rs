//! Figure 11: sensor-node energy breakdown (computation vs wireless) per
//! event for the aggregator engine (A), sensor node engine (S) and
//! cross-end engine (C).
//!
//! Paper shape: A's sensor energy is pure transmission and the largest;
//! S saves ~36.6 % over A with a barely visible wireless bar; C is best,
//! saving an additional ~31.7 % over S (~56.9 % over A).
//!
//! Run: `cargo run --release -p xpro-bench --bin fig11_energy_breakdown [--paper]`

use xpro_bench::{paper_mode, print_table, train_all_cases};
use xpro_core::config::SystemConfig;
use xpro_core::generator::Engine;
use xpro_core::report::EngineComparison;

fn main() {
    let cases = train_all_cases(paper_mode());

    let header: Vec<String> = ["case", "engine", "compute uJ", "wireless uJ", "total uJ"]
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    let mut rows = Vec::new();
    let mut save_s_over_a = Vec::new();
    let mut save_c_over_s = Vec::new();
    let mut save_c_over_a = Vec::new();
    for t in &cases {
        let inst = t.instance(SystemConfig::default());
        let cmp = EngineComparison::evaluate(t.case.symbol(), &inst).expect("evaluates");
        for engine in [Engine::InAggregator, Engine::InSensor, Engine::CrossEnd] {
            let e = cmp.of(engine).sensor;
            rows.push(vec![
                t.case.symbol().to_string(),
                engine.short().to_string(),
                format!("{:.2}", e.compute_pj / 1e6),
                format!("{:.2}", e.wireless_pj / 1e6),
                format!("{:.2}", e.total_pj() / 1e6),
            ]);
        }
        let ea = cmp.of(Engine::InAggregator).sensor.total_pj();
        let es = cmp.of(Engine::InSensor).sensor.total_pj();
        let ec = cmp.of(Engine::CrossEnd).sensor.total_pj();
        save_s_over_a.push(1.0 - es / ea);
        save_c_over_s.push(1.0 - ec / es);
        save_c_over_a.push(1.0 - ec / ea);
    }
    print_table(
        "Figure 11: sensor energy breakdown per event (90nm, Model 2)",
        &header,
        &rows,
    );
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 * 100.0;
    println!(
        "\naverage savings: S vs A {:.1}% (paper 36.6%), C vs S {:.1}% (paper 31.7%), C vs A {:.1}% (paper 56.9%)",
        avg(&save_s_over_a),
        avg(&save_c_over_s),
        avg(&save_c_over_a)
    );
}
