//! Fleet/runtime configuration with a validating fluent builder.

use crate::tenant::{validate_tenants, TenantSpec};
use xpro_core::XProError;

/// Configuration of one streaming executor run.
///
/// Defaults model a small healthy fleet: 4 nodes, 10 simulated seconds, a
/// lossless link, up to 3 retransmissions with 1 ms exponential backoff,
/// and a 1 s per-segment deadline. Every fault knob beyond the iid drop
/// rate defaults to *disabled*, so a default-configured run reproduces the
/// analytic evaluator exactly as before.
#[derive(Clone, Debug, PartialEq)]
pub struct RuntimeConfig {
    /// Number of sensor nodes sharing the aggregator and the channel.
    pub nodes: usize,
    /// Simulated (virtual) duration in seconds; segments arriving within
    /// `[0, duration_s)` are offered to the fleet.
    pub duration_s: f64,
    /// Probability that any single frame transmission attempt is lost.
    /// With the bursty channel enabled this is the *good*-state drop rate.
    pub drop_rate: f64,
    /// Retransmissions allowed per frame before the segment is abandoned.
    pub max_retries: u32,
    /// Backoff before the first retransmission; doubles per attempt.
    pub backoff_base_s: f64,
    /// Per-segment deadline from its arrival; a segment that cannot finish
    /// its wireless transfers by then is skipped (graceful degradation).
    pub timeout_s: f64,
    /// Seed for the fault-injection RNG; equal seeds reproduce runs bit-
    /// for-bit. The burst-state and per-node lifecycle generators derive
    /// independent streams from this seed, so the *fault environment* is
    /// identical across runs of the same seed even when the executors make
    /// different numbers of channel draws.
    pub seed: u64,
    /// Extra aggregator CPU time when a batch starts (wake-up/DMA setup);
    /// zero keeps the energy/delay model aligned with the analytic
    /// evaluator.
    pub batch_wake_s: f64,
    /// Phase-stagger node arrivals across one segment period instead of
    /// releasing every node at t = 0.
    pub stagger: bool,

    // --- Gilbert–Elliott bursty channel (enabled when `burst_bad_rate`
    // --- and `burst_p_enter` are both positive) ---
    /// Per-attempt drop rate while the channel is in the *bad* state; zero
    /// disables the two-state model entirely (pure iid drops).
    pub burst_bad_rate: f64,
    /// Per-slot probability of entering the bad state from the good state.
    pub burst_p_enter: f64,
    /// Per-slot probability of leaving the bad state back to good; zero
    /// makes a burst permanent (a mid-run degradation that never lifts).
    pub burst_p_exit: f64,
    /// Duration of one channel-state slot in seconds; the state machine is
    /// advanced slot-by-slot from t = 0 on a dedicated RNG stream, so the
    /// good/bad timeline depends only on the seed, never on traffic.
    pub burst_slot_s: f64,

    // --- Per-node crash/reboot lifecycle (enabled when `mtbf_s` > 0) ---
    /// Mean up-time between node crashes in seconds; zero disables the
    /// lifecycle model. Up-times are exponentially distributed per node on
    /// dedicated RNG streams.
    pub mtbf_s: f64,
    /// Mean repair (reboot) time in seconds.
    pub mttr_s: f64,
    /// Extra warm-up after a reboot before the node produces segments
    /// again (sensor front-end re-calibration); added to every down
    /// window.
    pub reboot_warmup_s: f64,
    /// Per-node energy budget in picojoules; once a node's compute +
    /// wireless spend crosses it the node shuts down for the rest of the
    /// run (battery depletion). Zero disables the model.
    pub battery_budget_pj: f64,

    // --- Aggregator outage windows (enabled when both are positive) ---
    /// Period of recurring aggregator outages in seconds; the k-th outage
    /// (k ≥ 1) starts at `k * agg_outage_period_s`. Zero disables.
    pub agg_outage_period_s: f64,
    /// Duration of each outage window; must stay below the period.
    pub agg_outage_s: f64,
    /// Bounded aggregator inbox: segments arriving while this many jobs
    /// are still queued or in service are rejected (backpressure overflow,
    /// counted — never an unbounded queue).
    pub agg_inbox: usize,

    // --- Adaptive partition controller ---
    /// Enables the controller: a sliding-window estimate of the effective
    /// attempt inflation re-invokes the XPro generator when the channel
    /// drifts outside the hysteresis band, and degradation tiers take over
    /// when no feasible cut meets the baseline delay limit.
    pub adaptive: bool,
    /// Number of frame-transfer observations in the estimator window.
    pub adaptive_window: usize,
    /// Hysteresis band multiplier (> 1): a re-plan triggers only when the
    /// estimated inflation leaves `[planned / h, planned * h]`.
    pub hysteresis: f64,
    /// Minimum time between partition switches (anti-flap dwell).
    pub min_dwell_s: f64,

    // --- Multi-tenant admission (enabled when non-empty) ---
    /// Tenant table partitioning the fleet's nodes, in declaration
    /// order; node counts must sum to `nodes`. Empty = single-tenant
    /// legacy behaviour (no admission layer, byte-identical reports).
    pub tenants: Vec<TenantSpec>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            nodes: 4,
            duration_s: 10.0,
            drop_rate: 0.0,
            max_retries: 3,
            backoff_base_s: 1e-3,
            timeout_s: 1.0,
            seed: 1,
            batch_wake_s: 0.0,
            stagger: true,
            burst_bad_rate: 0.0,
            burst_p_enter: 0.0,
            burst_p_exit: 0.0,
            burst_slot_s: 0.1,
            mtbf_s: 0.0,
            mttr_s: 1.0,
            reboot_warmup_s: 0.0,
            battery_budget_pj: 0.0,
            agg_outage_period_s: 0.0,
            agg_outage_s: 0.0,
            agg_inbox: 256,
            adaptive: false,
            adaptive_window: 64,
            hysteresis: 1.5,
            min_dwell_s: 0.5,
            tenants: Vec::new(),
        }
    }
}

impl RuntimeConfig {
    /// Starts a fluent builder seeded with the defaults.
    ///
    /// ```
    /// use xpro_runtime::RuntimeConfig;
    ///
    /// let cfg = RuntimeConfig::builder()
    ///     .nodes(8)
    ///     .drop_rate(0.05)
    ///     .seed(7)
    ///     .build()?;
    /// assert_eq!(cfg.nodes, 8);
    /// # Ok::<(), xpro_core::XProError>(())
    /// ```
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder {
            cfg: RuntimeConfig::default(),
        }
    }

    /// Whether the two-state bursty channel is active.
    pub fn burst_enabled(&self) -> bool {
        self.burst_bad_rate > 0.0 && self.burst_p_enter > 0.0
    }

    /// Whether the per-node crash/reboot lifecycle is active.
    pub fn lifecycle_enabled(&self) -> bool {
        self.mtbf_s > 0.0
    }

    /// Whether recurring aggregator outages are active.
    pub fn outage_enabled(&self) -> bool {
        self.agg_outage_period_s > 0.0 && self.agg_outage_s > 0.0
    }

    /// Validates every field against its documented range. Called by
    /// [`RuntimeConfigBuilder::build`], and again by
    /// [`crate::ExecutorBuilder::build`] because builder overrides (seed,
    /// adaptive) can change which invariants apply.
    ///
    /// # Errors
    ///
    /// Returns [`XProError::Config`] when any field is out of range: zero
    /// nodes, non-positive duration or timeout, probabilities outside their
    /// unit ranges, a non-positive burst slot, negative lifecycle times, an
    /// outage at least as long as its period, a zero inbox, a hysteresis
    /// band not above 1, or a negative/non-finite backoff, dwell or batch
    /// overhead.
    pub fn validate(&self) -> Result<(), XProError> {
        let c = self;
        if c.nodes == 0 {
            return Err(XProError::config("fleet needs at least one node"));
        }
        if !(c.duration_s.is_finite() && c.duration_s > 0.0) {
            return Err(XProError::config(format!(
                "duration_s must be positive and finite, got {}",
                c.duration_s
            )));
        }
        if !(c.drop_rate >= 0.0 && c.drop_rate < 1.0) {
            return Err(XProError::config(format!(
                "drop_rate must be in [0, 1), got {}",
                c.drop_rate
            )));
        }
        if !(c.backoff_base_s.is_finite() && c.backoff_base_s >= 0.0) {
            return Err(XProError::config(format!(
                "backoff_base_s must be non-negative and finite, got {}",
                c.backoff_base_s
            )));
        }
        if !(c.timeout_s.is_finite() && c.timeout_s > 0.0) {
            return Err(XProError::config(format!(
                "timeout_s must be positive and finite, got {}",
                c.timeout_s
            )));
        }
        if !(c.batch_wake_s.is_finite() && c.batch_wake_s >= 0.0) {
            return Err(XProError::config(format!(
                "batch_wake_s must be non-negative and finite, got {}",
                c.batch_wake_s
            )));
        }
        if !(c.burst_bad_rate >= 0.0 && c.burst_bad_rate < 1.0) {
            return Err(XProError::config(format!(
                "burst_bad_rate must be in [0, 1), got {}",
                c.burst_bad_rate
            )));
        }
        for (name, p) in [
            ("burst_p_enter", c.burst_p_enter),
            ("burst_p_exit", c.burst_p_exit),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(XProError::config(format!(
                    "{name} must be in [0, 1], got {p}"
                )));
            }
        }
        if !(c.burst_slot_s.is_finite() && c.burst_slot_s > 0.0) {
            return Err(XProError::config(format!(
                "burst_slot_s must be positive and finite, got {}",
                c.burst_slot_s
            )));
        }
        for (name, v) in [
            ("mtbf_s", c.mtbf_s),
            ("mttr_s", c.mttr_s),
            ("reboot_warmup_s", c.reboot_warmup_s),
            ("battery_budget_pj", c.battery_budget_pj),
            ("agg_outage_period_s", c.agg_outage_period_s),
            ("agg_outage_s", c.agg_outage_s),
            ("min_dwell_s", c.min_dwell_s),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(XProError::config(format!(
                    "{name} must be non-negative and finite, got {v}"
                )));
            }
        }
        if c.lifecycle_enabled() && c.mttr_s <= 0.0 {
            return Err(XProError::config(
                "mttr_s must be positive when the crash lifecycle is enabled",
            ));
        }
        if c.outage_enabled() && c.agg_outage_s >= c.agg_outage_period_s {
            return Err(XProError::config(format!(
                "agg_outage_s ({}) must be shorter than agg_outage_period_s ({})",
                c.agg_outage_s, c.agg_outage_period_s
            )));
        }
        if c.agg_inbox == 0 {
            return Err(XProError::config("agg_inbox must hold at least one job"));
        }
        if c.adaptive {
            if c.adaptive_window == 0 {
                return Err(XProError::config(
                    "adaptive_window must be positive when the controller is on",
                ));
            }
            if !(c.hysteresis.is_finite() && c.hysteresis > 1.0) {
                return Err(XProError::config(format!(
                    "hysteresis must be > 1, got {}",
                    c.hysteresis
                )));
            }
        }
        validate_tenants(&c.tenants, c.nodes)?;
        Ok(())
    }

    /// Whether the multi-tenant admission layer is active.
    pub fn tenancy_enabled(&self) -> bool {
        !self.tenants.is_empty()
    }
}

/// Fluent builder for [`RuntimeConfig`]; validated once, at
/// [`RuntimeConfigBuilder::build`].
#[derive(Clone, Debug)]
pub struct RuntimeConfigBuilder {
    cfg: RuntimeConfig,
}

impl Default for RuntimeConfigBuilder {
    fn default() -> Self {
        RuntimeConfig::builder()
    }
}

impl RuntimeConfigBuilder {
    /// Number of sensor nodes in the fleet.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.cfg.nodes = nodes;
        self
    }

    /// Simulated duration in seconds.
    pub fn duration_s(mut self, seconds: f64) -> Self {
        self.cfg.duration_s = seconds;
        self
    }

    /// Per-attempt frame loss probability (good-state rate under bursts).
    pub fn drop_rate(mut self, p: f64) -> Self {
        self.cfg.drop_rate = p;
        self
    }

    /// Retransmissions allowed per frame.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.cfg.max_retries = retries;
        self
    }

    /// Base backoff before the first retransmission (doubles per attempt).
    pub fn backoff_base_s(mut self, seconds: f64) -> Self {
        self.cfg.backoff_base_s = seconds;
        self
    }

    /// Per-segment deadline from arrival.
    pub fn timeout_s(mut self, seconds: f64) -> Self {
        self.cfg.timeout_s = seconds;
        self
    }

    /// Fault-injection RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Aggregator wake-up overhead charged at each batch start.
    pub fn batch_wake_s(mut self, seconds: f64) -> Self {
        self.cfg.batch_wake_s = seconds;
        self
    }

    /// Whether node arrivals are phase-staggered across one period.
    pub fn stagger(mut self, stagger: bool) -> Self {
        self.cfg.stagger = stagger;
        self
    }

    /// Bad-state drop rate of the Gilbert–Elliott channel (0 disables).
    pub fn burst_bad_rate(mut self, p: f64) -> Self {
        self.cfg.burst_bad_rate = p;
        self
    }

    /// Per-slot probability of entering the bad state.
    pub fn burst_p_enter(mut self, p: f64) -> Self {
        self.cfg.burst_p_enter = p;
        self
    }

    /// Per-slot probability of leaving the bad state (0 = permanent).
    pub fn burst_p_exit(mut self, p: f64) -> Self {
        self.cfg.burst_p_exit = p;
        self
    }

    /// Channel-state slot duration in seconds.
    pub fn burst_slot_s(mut self, seconds: f64) -> Self {
        self.cfg.burst_slot_s = seconds;
        self
    }

    /// Mean time between node crashes in seconds (0 disables).
    pub fn mtbf_s(mut self, seconds: f64) -> Self {
        self.cfg.mtbf_s = seconds;
        self
    }

    /// Mean node repair time in seconds.
    pub fn mttr_s(mut self, seconds: f64) -> Self {
        self.cfg.mttr_s = seconds;
        self
    }

    /// Post-reboot warm-up added to every down window.
    pub fn reboot_warmup_s(mut self, seconds: f64) -> Self {
        self.cfg.reboot_warmup_s = seconds;
        self
    }

    /// Per-node energy budget in picojoules (0 = unlimited).
    pub fn battery_budget_pj(mut self, pj: f64) -> Self {
        self.cfg.battery_budget_pj = pj;
        self
    }

    /// Period of recurring aggregator outages (0 disables).
    pub fn agg_outage_period_s(mut self, seconds: f64) -> Self {
        self.cfg.agg_outage_period_s = seconds;
        self
    }

    /// Duration of each aggregator outage window.
    pub fn agg_outage_s(mut self, seconds: f64) -> Self {
        self.cfg.agg_outage_s = seconds;
        self
    }

    /// Bounded aggregator inbox capacity (segments queued or in service).
    pub fn agg_inbox(mut self, capacity: usize) -> Self {
        self.cfg.agg_inbox = capacity;
        self
    }

    /// Enables the adaptive partition controller.
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.cfg.adaptive = adaptive;
        self
    }

    /// Estimator window size in frame transfers.
    pub fn adaptive_window(mut self, transfers: usize) -> Self {
        self.cfg.adaptive_window = transfers;
        self
    }

    /// Hysteresis band multiplier (must be > 1).
    pub fn hysteresis(mut self, h: f64) -> Self {
        self.cfg.hysteresis = h;
        self
    }

    /// Minimum dwell between partition switches.
    pub fn min_dwell_s(mut self, seconds: f64) -> Self {
        self.cfg.min_dwell_s = seconds;
        self
    }

    /// Tenant table partitioning the fleet's nodes (empty disables the
    /// admission layer).
    pub fn tenants(mut self, tenants: Vec<TenantSpec>) -> Self {
        self.cfg.tenants = tenants;
        self
    }

    /// Validates the accumulated configuration
    /// (see [`RuntimeConfig::validate`] for the invariants).
    ///
    /// # Errors
    ///
    /// Returns [`XProError::Config`] when any field is out of its
    /// documented range.
    pub fn build(self) -> Result<RuntimeConfig, XProError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;

    #[test]
    fn builder_defaults_match_default_impl() {
        assert_eq!(
            RuntimeConfig::builder().build().unwrap(),
            RuntimeConfig::default()
        );
        let cfg = RuntimeConfig::default();
        assert!(!cfg.burst_enabled());
        assert!(!cfg.lifecycle_enabled());
        assert!(!cfg.outage_enabled());
        assert!(!cfg.adaptive);
    }

    #[test]
    fn builder_rejects_out_of_range_values() {
        assert!(RuntimeConfig::builder().nodes(0).build().is_err());
        assert!(RuntimeConfig::builder().duration_s(0.0).build().is_err());
        assert!(RuntimeConfig::builder()
            .duration_s(f64::INFINITY)
            .build()
            .is_err());
        assert!(RuntimeConfig::builder().drop_rate(1.0).build().is_err());
        assert!(RuntimeConfig::builder().drop_rate(-0.1).build().is_err());
        assert!(RuntimeConfig::builder()
            .backoff_base_s(-1e-3)
            .build()
            .is_err());
        assert!(RuntimeConfig::builder().timeout_s(0.0).build().is_err());
        assert!(RuntimeConfig::builder().batch_wake_s(-1.0).build().is_err());
        let err = RuntimeConfig::builder().drop_rate(2.0).build().unwrap_err();
        assert!(matches!(err, XProError::Config(_)));
    }

    #[test]
    fn builder_rejects_bad_fault_knobs() {
        assert!(RuntimeConfig::builder()
            .burst_bad_rate(1.0)
            .build()
            .is_err());
        assert!(RuntimeConfig::builder().burst_p_enter(1.5).build().is_err());
        assert!(RuntimeConfig::builder().burst_p_exit(-0.1).build().is_err());
        assert!(RuntimeConfig::builder().burst_slot_s(0.0).build().is_err());
        assert!(RuntimeConfig::builder().mtbf_s(-1.0).build().is_err());
        assert!(RuntimeConfig::builder()
            .mtbf_s(10.0)
            .mttr_s(0.0)
            .build()
            .is_err());
        assert!(RuntimeConfig::builder()
            .agg_outage_period_s(1.0)
            .agg_outage_s(1.0)
            .build()
            .is_err());
        assert!(RuntimeConfig::builder().agg_inbox(0).build().is_err());
        assert!(RuntimeConfig::builder()
            .adaptive(true)
            .hysteresis(1.0)
            .build()
            .is_err());
        assert!(RuntimeConfig::builder()
            .adaptive(true)
            .adaptive_window(0)
            .build()
            .is_err());
        assert!(RuntimeConfig::builder()
            .battery_budget_pj(f64::NAN)
            .build()
            .is_err());
    }

    #[test]
    fn builder_sets_every_field() {
        let cfg = RuntimeConfig::builder()
            .nodes(2)
            .duration_s(3.0)
            .drop_rate(0.25)
            .max_retries(9)
            .backoff_base_s(0.5)
            .timeout_s(4.0)
            .seed(99)
            .batch_wake_s(0.125)
            .stagger(false)
            .burst_bad_rate(0.75)
            .burst_p_enter(0.1)
            .burst_p_exit(0.2)
            .burst_slot_s(0.25)
            .mtbf_s(30.0)
            .mttr_s(2.0)
            .reboot_warmup_s(0.5)
            .battery_budget_pj(1e9)
            .agg_outage_period_s(5.0)
            .agg_outage_s(0.5)
            .agg_inbox(32)
            .adaptive(true)
            .adaptive_window(48)
            .hysteresis(2.0)
            .min_dwell_s(0.25)
            .tenants(vec![TenantSpec::new("t0", 2)])
            .build()
            .unwrap();
        assert_eq!(cfg.nodes, 2);
        assert_eq!(cfg.duration_s, 3.0);
        assert_eq!(cfg.drop_rate, 0.25);
        assert_eq!(cfg.max_retries, 9);
        assert_eq!(cfg.backoff_base_s, 0.5);
        assert_eq!(cfg.timeout_s, 4.0);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.batch_wake_s, 0.125);
        assert!(!cfg.stagger);
        assert_eq!(cfg.burst_bad_rate, 0.75);
        assert_eq!(cfg.burst_p_enter, 0.1);
        assert_eq!(cfg.burst_p_exit, 0.2);
        assert_eq!(cfg.burst_slot_s, 0.25);
        assert_eq!(cfg.mtbf_s, 30.0);
        assert_eq!(cfg.mttr_s, 2.0);
        assert_eq!(cfg.reboot_warmup_s, 0.5);
        assert_eq!(cfg.battery_budget_pj, 1e9);
        assert_eq!(cfg.agg_outage_period_s, 5.0);
        assert_eq!(cfg.agg_outage_s, 0.5);
        assert_eq!(cfg.agg_inbox, 32);
        assert!(cfg.adaptive);
        assert_eq!(cfg.adaptive_window, 48);
        assert_eq!(cfg.hysteresis, 2.0);
        assert_eq!(cfg.min_dwell_s, 0.25);
        assert_eq!(cfg.tenants.len(), 1);
        assert_eq!(cfg.tenants[0].name, "t0");
        assert!(cfg.tenancy_enabled());
        assert!(cfg.burst_enabled() && cfg.lifecycle_enabled() && cfg.outage_enabled());
    }
}
