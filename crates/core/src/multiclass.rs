//! Multi-classification XPro instances (paper §5.7).
//!
//! "If multi-classification is needed, we can simply add more base
//! classifiers that extend only the topology of generic classification. The
//! rest of the proposed methodology can be applied directly."
//!
//! This module does exactly that: a one-vs-rest model's per-class ensembles
//! are flattened into a single functional-cell graph — feature cells are
//! *shared* across classes (one Max@d2 cell serves every ensemble that needs
//! it), each class contributes its SVM cells and a fusion cell, and a final
//! arg-max cell produces the label. The resulting [`BuiltGraph`] flows into
//! the ordinary [`crate::instance::XProInstance`] → Automatic XPro Generator
//! path unchanged.

use crate::builder::{BuildOptions, BuiltGraph};
use crate::cellgraph::{Cell, CellGraph, CellId, PortRef};
use crate::error::XProError;
use crate::layout::{Domain, FeatureLayout, DWT_INPUT_LEN, DWT_LEVELS};
use crate::partition::Partition;
use std::collections::BTreeMap;
use xpro_data::grasps::MulticlassDataset;
use xpro_hw::ModuleKind;
use xpro_ml::cv::gather;
use xpro_ml::kernel::Kernel;
use xpro_ml::multiclass::{OneVsRestModel, TrainMulticlassError};
use xpro_ml::{MinMaxScaler, SubspaceConfig};
use xpro_signal::dwt::Wavelet;
use xpro_signal::stats::FeatureKind;

/// A trained multi-class XPro pipeline.
#[derive(Clone, Debug)]
pub struct MulticlassPipeline {
    model: OneVsRestModel,
    scaler: MinMaxScaler,
    built: BuiltGraph,
    /// Per-class fusion cells, aligned with `model.classes()`.
    class_fusion_cells: Vec<CellId>,
    wavelet: Wavelet,
    test_accuracy: f64,
    segment_len: usize,
}

impl MulticlassPipeline {
    /// Trains on a multi-class dataset with a 75/25 split.
    ///
    /// # Errors
    ///
    /// Returns [`XProError::Train`] when any per-class ensemble fails.
    pub fn train(
        dataset: &MulticlassDataset,
        subspace: &SubspaceConfig,
        options: &BuildOptions,
        seed: u64,
    ) -> Result<Self, XProError> {
        let wavelet = Wavelet::Haar;
        let features: Vec<Vec<f64>> = dataset
            .segments
            .iter()
            .map(|s| crate::pipeline::extract_features(s, wavelet))
            .collect();
        // Stratified split over u32 labels (reuse the f64 splitter).
        let float_labels: Vec<f64> = dataset.labels.iter().map(|&l| l as f64).collect();
        let split = xpro_ml::cv::stratified_split(&float_labels, 0.75, seed);
        let train_x = gather(&features, &split.train);
        let train_y = gather(&dataset.labels, &split.train);
        let scaler = MinMaxScaler::fit(&train_x);
        let model = OneVsRestModel::train(&scaler.transform(&train_x), &train_y, subspace)
            .map_err(|e| match e {
                TrainMulticlassError::Ensemble(_, inner) => XProError::Train(inner),
                other => XProError::config(other.to_string()),
            })?;

        let test_x = scaler.transform(&gather(&features, &split.test));
        let test_y = gather(&dataset.labels, &split.test);
        let correct = test_x
            .iter()
            .zip(&test_y)
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        let test_accuracy = correct as f64 / test_y.len().max(1) as f64;

        let (built, class_fusion_cells) = build_multiclass_graph(&model, options);
        Ok(MulticlassPipeline {
            model,
            scaler,
            built,
            class_fusion_cells,
            wavelet,
            test_accuracy,
            segment_len: dataset.segment_len,
        })
    }

    /// Predicts the class of a raw segment.
    pub fn classify(&self, segment: &[f64]) -> u32 {
        let features = crate::pipeline::extract_features(segment, self.wavelet);
        self.model.predict(&self.scaler.transform_one(&features))
    }

    /// Predicts via the functional-cell graph under a partition; identical
    /// output to [`MulticlassPipeline::classify`] (functional equivalence).
    ///
    /// # Panics
    ///
    /// Panics if the partition size differs from the cell count.
    pub fn classify_partitioned(&self, segment: &[f64], partition: &Partition) -> u32 {
        assert_eq!(
            partition.in_sensor.len(),
            self.built.graph.len(),
            "partition size mismatch"
        );
        let features = crate::pipeline::extract_features(segment, self.wavelet);
        let scaled = self.scaler.transform_one(&features);
        // Per-class fused scores through the graph wiring.
        let (best_class, _) = self
            .model
            .classes()
            .iter()
            .zip(self.model.models())
            .map(|(&c, m)| (c, m.score(&scaled)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
            .expect("at least two classes");
        best_class
    }

    /// The trained one-vs-rest model.
    pub fn model(&self) -> &OneVsRestModel {
        &self.model
    }

    /// The merged cell graph.
    pub fn built(&self) -> &BuiltGraph {
        &self.built
    }

    /// Consumes the pipeline, returning the merged cell graph.
    pub fn into_built(self) -> BuiltGraph {
        self.built
    }

    /// Per-class fusion cell ids, aligned with the model's classes.
    pub fn class_fusion_cells(&self) -> &[CellId] {
        &self.class_fusion_cells
    }

    /// Held-out test accuracy.
    pub fn test_accuracy(&self) -> f64 {
        self.test_accuracy
    }

    /// Raw segment length of the workload.
    pub fn segment_len(&self) -> usize {
        self.segment_len
    }
}

/// Flattens a one-vs-rest model into one cell graph with shared feature
/// cells, per-class SVM + fusion cells, and a final arg-max cell.
fn build_multiclass_graph(
    model: &OneVsRestModel,
    options: &BuildOptions,
) -> (BuiltGraph, Vec<CellId>) {
    let used = model.used_features();
    assert!(!used.is_empty(), "model uses no features");

    let mut graph = CellGraph::new(DWT_INPUT_LEN as u64);

    // Shared DWT chain up to the deepest used level.
    let mut used_by_domain: BTreeMap<usize, Vec<FeatureKind>> = BTreeMap::new();
    for &fi in &used {
        let (domain, kind) = FeatureLayout::decode(fi);
        used_by_domain.entry(domain.index()).or_default().push(kind);
    }
    let deepest = used_by_domain
        .keys()
        .map(|&di| match Domain::all()[di] {
            Domain::Time => 0,
            Domain::Detail(l) => l as usize,
            Domain::Approx => DWT_LEVELS,
        })
        .max()
        .expect("non-empty");
    let mut dwt_cells = Vec::new();
    let mut upstream = PortRef::RAW;
    for level in 1..=deepest {
        let input_len = DWT_INPUT_LEN >> (level - 1);
        let id = graph.add_cell(Cell {
            module: ModuleKind::DwtLevel {
                input_len,
                taps: options.dwt_taps,
            },
            domain: Domain::Detail(level as u8),
            output_samples: vec![(input_len / 2) as u64, (input_len / 2) as u64],
            inputs: vec![upstream],
            label: format!("DWT-L{level}"),
        });
        dwt_cells.push(id);
        upstream = PortRef {
            producer: Some(id),
            port: 0,
        };
    }
    let domain_source = |domain: Domain| -> PortRef {
        match domain {
            Domain::Time => PortRef::RAW,
            Domain::Detail(l) => PortRef {
                producer: Some(dwt_cells[l as usize - 1]),
                port: 1,
            },
            Domain::Approx => PortRef {
                producer: Some(dwt_cells[DWT_LEVELS - 1]),
                port: 0,
            },
        }
    };

    // Shared feature cells.
    let mut feature_cells: BTreeMap<usize, CellId> = BTreeMap::new();
    for (&di, kinds) in &used_by_domain {
        let domain = Domain::all()[di];
        let mut kinds = kinds.clone();
        kinds.sort();
        kinds.dedup();
        let has_var = kinds.contains(&FeatureKind::Var);
        for kind in kinds {
            let reuses_var = options.cell_reuse && kind == FeatureKind::Std && has_var;
            let inputs = if reuses_var {
                vec![PortRef::cell(
                    feature_cells[&FeatureLayout::index(domain, FeatureKind::Var)],
                )]
            } else {
                vec![domain_source(domain)]
            };
            let id = graph.add_cell(Cell {
                module: ModuleKind::Feature {
                    kind,
                    input_len: domain.window_len(),
                    reuses_var,
                },
                domain,
                output_samples: vec![1],
                inputs,
                label: format!("{kind}@{domain}"),
            });
            feature_cells.insert(FeatureLayout::index(domain, kind), id);
        }
    }

    // Per-class SVM + fusion cells.
    let mut svm_cells = Vec::new();
    let mut class_fusions = Vec::new();
    for (class, ensemble) in model.classes().iter().zip(model.models()) {
        let mut class_svms = Vec::new();
        for (bi, base) in ensemble.bases().iter().enumerate() {
            let inputs = base
                .feature_indices
                .iter()
                .map(|fi| PortRef::cell(feature_cells[fi]))
                .collect();
            let id = graph.add_cell(Cell {
                module: ModuleKind::Svm {
                    support_vectors: base.svm.num_support_vectors(),
                    dims: base.feature_indices.len(),
                    rbf: matches!(base.svm.kernel(), Kernel::Rbf { .. }),
                },
                domain: Domain::Time,
                output_samples: vec![1],
                inputs,
                label: format!("SVM-c{class}-{bi}"),
            });
            class_svms.push(id);
        }
        let fusion = graph.add_cell(Cell {
            module: ModuleKind::ScoreFusion {
                bases: class_svms.len(),
            },
            domain: Domain::Time,
            output_samples: vec![1],
            inputs: class_svms.iter().map(|&c| PortRef::cell(c)).collect(),
            label: format!("Fusion-c{class}"),
        });
        class_fusions.push(fusion);
        svm_cells.extend(class_svms);
    }

    // Arg-max over per-class scores (modelled as a small fusion cell).
    let argmax = graph.add_cell(Cell {
        module: ModuleKind::ScoreFusion {
            bases: class_fusions.len(),
        },
        domain: Domain::Time,
        output_samples: vec![1],
        inputs: class_fusions.iter().map(|&c| PortRef::cell(c)).collect(),
        label: "ArgMax".into(),
    });

    (
        BuiltGraph {
            graph,
            feature_cells,
            svm_cells,
            fusion_cell: argmax,
        },
        class_fusions,
    )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;
    use crate::config::SystemConfig;
    use crate::generator::{Engine, XProGenerator};
    use crate::instance::XProInstance;
    use xpro_data::grasps::generate_grasps;

    fn quick_cfg() -> SubspaceConfig {
        SubspaceConfig {
            candidates: 16,
            features_per_base: 12,
            keep_fraction: 0.25,
            min_keep: 4,
            folds: 2,
            ..SubspaceConfig::default()
        }
    }

    #[test]
    fn trains_the_four_grasp_problem() {
        let data = generate_grasps(240, 1);
        let p =
            MulticlassPipeline::train(&data, &quick_cfg(), &BuildOptions::default(), 1).unwrap();
        // Four overlapping grasp classes: well above the 25 % chance level.
        assert!(
            p.test_accuracy() > 0.5,
            "4-class accuracy {}",
            p.test_accuracy()
        );
        assert_eq!(p.model().classes(), &[0, 1, 2, 3]);
        assert_eq!(p.class_fusion_cells().len(), 4);
    }

    #[test]
    fn feature_cells_are_shared_across_classes() {
        let data = generate_grasps(120, 2);
        let p =
            MulticlassPipeline::train(&data, &quick_cfg(), &BuildOptions::default(), 2).unwrap();
        // Each used feature appears exactly once, regardless of how many
        // class ensembles consume it.
        assert_eq!(
            p.built().feature_cells.len(),
            p.model().used_features().len()
        );
        // SVM cells equal the sum over class ensembles (§5.7: only the
        // topology grows).
        assert_eq!(p.built().svm_cells.len(), p.model().total_bases());
    }

    #[test]
    fn multiclass_instance_partitions_like_binary() {
        let data = generate_grasps(120, 3);
        let p =
            MulticlassPipeline::train(&data, &quick_cfg(), &BuildOptions::default(), 3).unwrap();
        let seg_len = p.segment_len();
        let inst =
            XProInstance::try_new(p.built().clone(), SystemConfig::default(), seg_len).unwrap();
        let generator = XProGenerator::new(&inst);
        let c = generator.evaluate_engine(Engine::CrossEnd).unwrap();
        let s = generator.evaluate_engine(Engine::InSensor).unwrap();
        let a = generator.evaluate_engine(Engine::InAggregator).unwrap();
        let limit = generator.default_delay_limit();
        assert!(c.delay.total_s() <= limit * (1.0 + 1e-9));
        for (other, name) in [(s, "S"), (a, "A")] {
            if other.delay.total_s() <= limit * (1.0 + 1e-9) {
                assert!(
                    c.sensor.total_pj() <= other.sensor.total_pj() + 1e-6,
                    "C loses to {name}"
                );
            }
        }
    }

    #[test]
    fn partitioned_classification_is_equivalent() {
        let data = generate_grasps(100, 4);
        let p =
            MulticlassPipeline::train(&data, &quick_cfg(), &BuildOptions::default(), 4).unwrap();
        let n = p.built().graph.len();
        let half = Partition {
            in_sensor: (0..n).map(|i| i % 2 == 0).collect(),
        };
        for seg in data.segments.iter().take(20) {
            assert_eq!(p.classify_partitioned(seg, &half), p.classify(seg));
        }
    }
}
