//! A full body-sensor network: ECG wristband + EEG headband + EMG armband
//! sharing one smartphone aggregator (the multi-node extension of §5.7),
//! with the EMG node running the 4-grasp multi-class engine (also §5.7).
//!
//! Run: `cargo run --release --example bsn_fleet`

use xpro::core::builder::BuildOptions;
use xpro::data::grasps::generate_grasps;
use xpro::data::{generate_case_sized, CaseId};
use xpro::ml::SubspaceConfig;
use xpro::prelude::*;

fn subspace() -> SubspaceConfig {
    SubspaceConfig {
        candidates: 16,
        keep_fraction: 0.25,
        min_keep: 4,
        folds: 2,
        ..SubspaceConfig::default()
    }
}

fn binary_node(case: CaseId, seed: u64) -> Result<XProInstance, XProError> {
    let data = generate_case_sized(case, 200, seed);
    let cfg = PipelineConfig::builder().subspace(subspace()).build()?;
    let p = XProPipeline::train(&data, &cfg)?;
    println!(
        "  {case}: {} cells, accuracy {:.0}%",
        p.built().graph.len(),
        p.test_accuracy() * 100.0
    );
    let len = p.segment_len();
    XProInstance::try_new(p.into_built(), SystemConfig::default(), len)
}

fn main() -> Result<(), XProError> {
    println!("training the fleet:");
    let ecg = binary_node(CaseId::C1, 1)?;
    let eeg = binary_node(CaseId::E1, 2)?;

    // The EMG armband classifies four grasps (multi-class extension).
    let grasp_data = generate_grasps(240, 3);
    let grasp = MulticlassPipeline::train(&grasp_data, &subspace(), &BuildOptions::default(), 3)?;
    println!(
        "  grasps: {} cells ({} bases across 4 classes), accuracy {:.0}%",
        grasp.built().graph.len(),
        grasp.model().total_bases(),
        grasp.test_accuracy() * 100.0
    );
    let grasp_len = grasp.segment_len();
    let emg = XProInstance::try_new(grasp.into_built(), SystemConfig::default(), grasp_len)?;

    let mut bsn = BsnSystem::new();
    bsn.add_node(ecg).add_node(eeg).add_node(emg);

    println!(
        "\n{:<18} {:>16} {:>14} {:>12} {:>12}",
        "engine", "weakest sensor", "aggregator", "channel", "fits"
    );
    for engine in [Engine::InAggregator, Engine::InSensor, Engine::CrossEnd] {
        let eval = bsn.evaluate(engine)?;
        println!(
            "{:<18} {:>13.0} h {:>11.0} h {:>11.1}% {:>9} nodes",
            engine.short(),
            eval.weakest_sensor_hours(),
            eval.aggregator_battery_hours,
            eval.channel_utilization * 100.0,
            bsn.max_nodes_on_shared_channel(engine)?
        );
    }
    println!(
        "\ncross-end cuts keep every wearable alive longest AND leave the shared\n\
         2 Mbps channel room for a larger fleet (the §5.7 multi-node argument)."
    );
    Ok(())
}
