//! Graph algorithms backing the Automatic XPro Generator.
//!
//! The paper's key algorithmic move (§3.2) is formulating functional-cell
//! partitioning as a standard graph problem: an s-t graph whose min-cut
//! capacity equals the sensor-node energy of the induced partition. This
//! crate provides the machinery:
//!
//! * [`dinic`] — Dinic's max-flow / min-cut on real-valued capacities with
//!   infinite-capacity ("grouped cells") edges;
//! * [`dag`] — topological ordering and weighted critical paths, used to
//!   evaluate the end-to-end delay of a partitioned engine.
//!
//! # Examples
//!
//! The worked example of the paper's Fig. 6/7 — three features and one
//! classifier — is reproduced as an integration test in
//! `tests/paper_example.rs`; the basic cut machinery looks like this:
//!
//! ```
//! use xpro_graph::dinic::{FlowNetwork, INF};
//!
//! let mut net = FlowNetwork::new();
//! let f = net.add_node(); // sensor (source)
//! let d = net.add_node(); // dummy raw-data node
//! let c = net.add_node(); // a functional cell
//! let b = net.add_node(); // aggregator (sink)
//! net.add_edge(f, d, 1.2);   // energy of transmitting the raw segment
//! net.add_edge(d, c, INF);   // "grouped" cells stay together
//! net.add_edge(c, b, 0.2);   // in-sensor compute energy of the cell
//! let cut = net.min_cut(f, b);
//! assert_eq!(cut.capacity, 0.2); // cheaper to compute in-sensor
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dag;
pub mod dinic;

pub use dag::{CycleError, WeightedDag};
pub use dinic::{FlowNetwork, MinCut, NodeId, INF};
