//! Transient electrical battery model after Chen & Rincon-Mora (2006), the
//! model the paper's §5.1 cites: an open-circuit voltage source that depends
//! nonlinearly on state of charge, a series resistance and two RC pairs
//! capturing short- and long-time-constant relaxation.
//!
//! The steady-state [`crate::runtime::BatteryModel`] answers "how long does
//! it last"; this model answers "what does the terminal voltage do", which
//! matters for brown-out analysis of duty-cycled radios (transmit bursts pull
//! tens of mA from a 40 mAh cell).
//!
//! Parameter shapes follow the paper's Fig. 10 fits for a polymer Li-ion
//! cell, scaled by capacity.

/// Configuration of the transient model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransientConfig {
    /// Nominal capacity in mAh.
    pub capacity_mah: f64,
    /// Series (ohmic) resistance in ohms.
    pub r_series: f64,
    /// Short-time-constant RC pair (ohms, farads).
    pub r_ts: f64,
    /// Short time-constant capacitance in farads.
    pub c_ts: f64,
    /// Long-time-constant RC pair resistance in ohms.
    pub r_tl: f64,
    /// Long time-constant capacitance in farads.
    pub c_tl: f64,
    /// Cutoff (empty) terminal voltage in volts.
    pub v_cutoff: f64,
}

impl TransientConfig {
    /// A 40 mAh polymer Li-ion wearable cell. Small cells have high internal
    /// resistance (the Chen–Rincon-Mora parameters scale inversely with
    /// capacity; their 850 mAh cell measured ~0.08 Ω series).
    pub fn sensor_40mah() -> Self {
        TransientConfig {
            capacity_mah: 40.0,
            r_series: 1.7,
            r_ts: 0.85,
            c_ts: 40.0,
            r_tl: 1.1,
            c_tl: 300.0,
            v_cutoff: 3.0,
        }
    }
}

/// Transient battery state: state of charge plus RC-pair voltages.
#[derive(Clone, Debug, PartialEq)]
pub struct TransientBattery {
    config: TransientConfig,
    /// State of charge in [0, 1].
    soc: f64,
    /// Voltage across the short-time-constant RC pair.
    v_ts: f64,
    /// Voltage across the long-time-constant RC pair.
    v_tl: f64,
}

impl TransientBattery {
    /// A fully charged battery.
    ///
    /// # Panics
    ///
    /// Panics if any config parameter is non-positive.
    pub fn new(config: TransientConfig) -> Self {
        assert!(config.capacity_mah > 0.0, "capacity must be positive");
        assert!(
            config.r_series > 0.0
                && config.r_ts > 0.0
                && config.c_ts > 0.0
                && config.r_tl > 0.0
                && config.c_tl > 0.0,
            "RC parameters must be positive"
        );
        TransientBattery {
            config,
            soc: 1.0,
            v_ts: 0.0,
            v_tl: 0.0,
        }
    }

    /// State of charge in `[0, 1]`.
    pub fn soc(&self) -> f64 {
        self.soc
    }

    /// Open-circuit voltage at the current state of charge — the
    /// Chen–Rincon-Mora exponential + polynomial fit for Li-ion chemistry.
    pub fn open_circuit_v(&self) -> f64 {
        let s = self.soc;
        // V_oc(SOC) = -1.031·e^(-35·SOC) + 3.685 + 0.2156·SOC
        //             - 0.1178·SOC² + 0.3201·SOC³   (Chen & Rincon-Mora, Li-ion)
        -1.031 * (-35.0 * s).exp() + 3.685 + 0.2156 * s - 0.1178 * s * s + 0.3201 * s * s * s
    }

    /// Terminal voltage under a given load current (amps).
    pub fn terminal_v(&self, load_a: f64) -> f64 {
        self.open_circuit_v() - self.v_ts - self.v_tl - load_a * self.config.r_series
    }

    /// Advances the model by `dt` seconds under a constant load (amps).
    ///
    /// # Panics
    ///
    /// Panics if `dt` or `load_a` is negative.
    pub fn step(&mut self, load_a: f64, dt: f64) {
        assert!(dt >= 0.0, "time step must be non-negative");
        assert!(load_a >= 0.0, "load must be non-negative");
        // Coulomb counting.
        let drawn_mah = load_a * 1000.0 * dt / 3600.0;
        self.soc = (self.soc - drawn_mah / self.config.capacity_mah).max(0.0);
        // RC relaxation toward I·R with exponential integration (exact for
        // constant current over the step).
        let relax = |v: f64, r: f64, c: f64| -> f64 {
            let target = load_a * r;
            let alpha = (-dt / (r * c)).exp();
            target + (v - target) * alpha
        };
        self.v_ts = relax(self.v_ts, self.config.r_ts, self.config.c_ts);
        self.v_tl = relax(self.v_tl, self.config.r_tl, self.config.c_tl);
    }

    /// Whether the battery has reached cutoff under the given load.
    pub fn is_empty(&self, load_a: f64) -> bool {
        self.soc <= 0.0 || self.terminal_v(load_a) <= self.config.v_cutoff
    }

    /// Simulates a constant discharge and returns the runtime in hours.
    ///
    /// # Panics
    ///
    /// Panics if `load_a` is not positive.
    pub fn runtime_hours_at(config: TransientConfig, load_a: f64) -> f64 {
        assert!(load_a > 0.0, "load must be positive");
        let mut battery = TransientBattery::new(config);
        // Step at 1/200 of the coulombic runtime for accuracy, capped for
        // very light loads.
        let coulombic_h = config.capacity_mah / (load_a * 1000.0);
        let dt = (coulombic_h * 3600.0 / 200.0).min(60.0);
        let mut t = 0.0;
        while !battery.is_empty(load_a) {
            battery.step(load_a, dt);
            t += dt;
            if t > coulombic_h * 3600.0 * 2.0 {
                break; // defensive: never loop past 2× the coulombic bound
            }
        }
        t / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cell_sits_near_4_15_v() {
        let b = TransientBattery::new(TransientConfig::sensor_40mah());
        let v = b.open_circuit_v();
        assert!((4.0..4.2).contains(&v), "V_oc {v}");
        assert_eq!(b.soc(), 1.0);
    }

    #[test]
    fn voltage_falls_with_discharge() {
        let mut b = TransientBattery::new(TransientConfig::sensor_40mah());
        let v0 = b.terminal_v(0.004);
        for _ in 0..100 {
            b.step(0.004, 3600.0 / 20.0); // 0.2C for 5 h total → drained
        }
        assert!(b.soc() < 1.0);
        assert!(b.terminal_v(0.004) < v0);
    }

    #[test]
    fn voltage_knee_near_empty() {
        // The exponential term makes voltage collapse below ~10 % SOC.
        let mut b = TransientBattery::new(TransientConfig::sensor_40mah());
        b.soc = 0.5;
        let mid = b.open_circuit_v();
        b.soc = 0.03;
        let low = b.open_circuit_v();
        assert!(mid - low > 0.3, "knee too soft: {mid} vs {low}");
    }

    #[test]
    fn runtime_tracks_coulomb_count_at_light_load() {
        // 2 mA (0.05C) from 40 mAh ≈ 20 h minus the cutoff margin.
        let t = TransientBattery::runtime_hours_at(TransientConfig::sensor_40mah(), 0.002);
        assert!((14.0..20.5).contains(&t), "runtime {t} h");
    }

    #[test]
    fn heavy_load_cuts_off_early() {
        // 40 mA (1C) through ~3.6 Ω total drops >0.14 V of IR; combined with
        // the OCV slope, cutoff hits well before the coulombic 1 h.
        let light = TransientBattery::runtime_hours_at(TransientConfig::sensor_40mah(), 0.002);
        let heavy = TransientBattery::runtime_hours_at(TransientConfig::sensor_40mah(), 0.040);
        // Normalize to the coulombic bound to compare fairly.
        let light_frac = light / (40.0 / 2.0);
        let heavy_frac = heavy / (40.0 / 40.0);
        assert!(
            heavy_frac < light_frac,
            "heavy {heavy_frac} !< light {light_frac}"
        );
    }

    #[test]
    fn rc_pairs_relax_toward_ir() {
        let mut b = TransientBattery::new(TransientConfig::sensor_40mah());
        let load = 0.01;
        // Long enough for both time constants (R·C ≈ 34 s and 330 s).
        b.step(load, 3000.0);
        let expect_ts = load * b.config.r_ts;
        let expect_tl = load * b.config.r_tl;
        assert!((b.v_ts - expect_ts).abs() < 1e-6, "v_ts {}", b.v_ts);
        assert!((b.v_tl - expect_tl).abs() < 1e-3, "v_tl {}", b.v_tl);
    }

    #[test]
    fn transmit_burst_sags_then_recovers() {
        // A radio burst pulls the terminal down; after the burst the RC
        // voltages relax and the terminal recovers (load removed).
        let mut b = TransientBattery::new(TransientConfig::sensor_40mah());
        b.step(0.0, 1.0);
        let before = b.terminal_v(0.0);
        b.step(0.020, 5.0); // 20 mA burst
        let sagged = b.terminal_v(0.020);
        b.step(0.0, 600.0); // rest
        let recovered = b.terminal_v(0.0);
        assert!(sagged < before - 0.03, "no sag: {before} → {sagged}");
        assert!(
            recovered > sagged + 0.02,
            "no recovery: {sagged} → {recovered}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        TransientBattery::new(TransientConfig {
            capacity_mah: 0.0,
            ..TransientConfig::sensor_40mah()
        });
    }
}
