//! Quickstart: train the generic classification pipeline on one biosignal
//! case, let the Automatic XPro Generator place the cross-end cut, and
//! compare the resulting system against the two single-end designs.
//!
//! Run: `cargo run --release --example quickstart`

use xpro::data::{generate_case_sized, CaseId};
use xpro::ml::SubspaceConfig;
use xpro::prelude::*;

fn main() -> Result<(), XProError> {
    // 1. Workload: the paper's C1 case (TwoLeadECG), subsampled for speed.
    let dataset = generate_case_sized(CaseId::C1, 200, 42);
    println!(
        "dataset {}: {} segments of {} samples",
        dataset.name,
        dataset.len(),
        dataset.segment_len
    );

    // 2. Train the generic classification framework: 8 statistical features
    //    on the time domain and a 5-level DWT, random-subspace SVM ensemble,
    //    least-squares weighted voting.
    let cfg = PipelineConfig::builder()
        .subspace(SubspaceConfig {
            candidates: 16,
            keep_fraction: 0.25,
            ..SubspaceConfig::default()
        })
        .build()?;
    let pipeline = XProPipeline::train(&dataset, &cfg)?;
    println!(
        "trained: {} base classifiers, {} feature cells, test accuracy {:.1}%",
        pipeline.model().bases().len(),
        pipeline.built().feature_cells.len(),
        pipeline.test_accuracy() * 100.0
    );

    // 3. Price the functional cells under the paper's default system:
    //    90 nm sensor hardware at 16 MHz, wireless Model 2, Cortex-A8
    //    aggregator, 40 mAh sensor battery.
    let segment_len = pipeline.segment_len();
    let instance =
        XProInstance::try_new(pipeline.into_built(), SystemConfig::default(), segment_len)?;
    println!("instance: {} functional cells", instance.num_cells());

    // 4. Generate the cross-end partition and compare engines.
    let generator = XProGenerator::new(&instance);
    let cut = generator.partition_for(Engine::CrossEnd)?;
    println!(
        "cross-end cut: {}/{} cells in-sensor",
        cut.sensor_count(),
        instance.num_cells()
    );

    let cmp = EngineComparison::evaluate("C1", &instance)?;
    println!(
        "\n{:<22} {:>12} {:>12} {:>12}",
        "engine", "energy/event", "delay", "battery"
    );
    for engine in Engine::ALL {
        let e = cmp.of(engine);
        println!(
            "{:<22} {:>9.2} uJ {:>9.2} ms {:>10.0} h",
            engine.to_string(),
            e.sensor.total_pj() / 1e6,
            e.delay.total_s() * 1e3,
            e.sensor_battery_hours
        );
    }
    println!(
        "\ncross-end battery life: {:.2}x the aggregator engine, {:.2}x the sensor engine",
        cmp.lifetime_gain_over(Engine::InAggregator),
        cmp.lifetime_gain_over(Engine::InSensor)
    );
    Ok(())
}
