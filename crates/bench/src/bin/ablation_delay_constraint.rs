//! Ablation A4 — the delay constraint of the Automatic XPro Generator
//! (§3.2.3).
//!
//! Compares the unconstrained minimum-energy cut against the
//! delay-constrained cut at the paper's limit `min(T_F, T_B)` and at
//! tighter fractions of it, showing the energy price of latency.
//!
//! Run: `cargo run --release -p xpro-bench --bin ablation_delay_constraint [--paper]`

use xpro_bench::{fmt, paper_mode, print_table, train_all_cases};
use xpro_core::config::SystemConfig;
use xpro_core::generator::XProGenerator;
use xpro_core::partition::evaluate;

fn main() {
    let cases = train_all_cases(paper_mode());
    let header: Vec<String> = [
        "case",
        "limit",
        "unconstrained uJ",
        "uncon. delay",
        "constrained uJ",
        "constr. delay",
        "tight(0.8x) uJ",
        "tight delay",
    ]
    .iter()
    .map(std::string::ToString::to_string)
    .collect();
    let mut rows = Vec::new();
    for t in &cases {
        let inst = t.instance(SystemConfig::default());
        let generator = XProGenerator::new(&inst);
        let limit = generator.default_delay_limit();

        let show = |p: &xpro_core::Partition| {
            let e = evaluate(&inst, p);
            (
                fmt(e.sensor.total_pj() / 1e6),
                format!("{:.2}ms", e.delay.total_s() * 1e3),
            )
        };
        let unconstrained = show(&generator.unconstrained_cut());
        let constrained = show(
            &generator
                .delay_constrained_cut(limit)
                .expect("default limit is feasible"),
        );
        let tight = match generator.delay_constrained_cut(limit * 0.8) {
            Ok(p) => show(&p),
            Err(_) => ("-".to_string(), "infeasible".to_string()),
        };
        rows.push(vec![
            t.case.symbol().to_string(),
            format!("{:.2}ms", limit * 1e3),
            unconstrained.0,
            unconstrained.1,
            constrained.0,
            constrained.1,
            tight.0,
            tight.1,
        ]);
    }
    print_table(
        "Ablation A4: energy cost of the delay constraint (90nm, Model 2)",
        &header,
        &rows,
    );
    println!(
        "\nunconstrained cuts may exceed the limit; tightening the limit below\n\
         min(T_F, T_B) trades sensor energy for latency."
    );
}
