//! Q16.16 fixed-point arithmetic.
//!
//! The XPro paper (§4.4) adopts a 32-bit fixed-point number format with 16
//! integer bits and 16 fractional bits for all in-sensor functional cells.
//! [`Q16`] reproduces that datapath exactly so the sensor-side feature values
//! match what the hardware would compute, including rounding behaviour.
//!
//! All arithmetic saturates instead of wrapping: a hardware datapath clamps at
//! the rails rather than aliasing, and saturation keeps downstream feature
//! values well-behaved for classification.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Number of fractional bits in the [`Q16`] format.
pub const FRAC_BITS: u32 = 16;
/// Scale factor (2^16) between the raw integer representation and the value.
pub const SCALE: i64 = 1 << FRAC_BITS;

/// A 32-bit fixed-point number with 16 integer and 16 fractional bits.
///
/// This is the number format of every in-sensor functional cell in XPro.
/// Construct values with [`Q16::from_f64`], [`Q16::from_int`] or
/// [`Q16::from_raw`].
///
/// # Examples
///
/// ```
/// use xpro_signal::fixed::Q16;
///
/// let a = Q16::from_f64(1.5);
/// let b = Q16::from_f64(2.25);
/// assert_eq!((a * b).to_f64(), 3.375);
/// assert_eq!((a + b).to_f64(), 3.75);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q16(i32);

impl Q16 {
    /// The additive identity.
    pub const ZERO: Q16 = Q16(0);
    /// The multiplicative identity.
    pub const ONE: Q16 = Q16(1 << FRAC_BITS);
    /// Smallest positive representable increment (2^-16).
    pub const EPSILON: Q16 = Q16(1);
    /// Largest representable value (~32767.99998).
    pub const MAX: Q16 = Q16(i32::MAX);
    /// Smallest (most negative) representable value (-32768).
    pub const MIN: Q16 = Q16(i32::MIN);

    /// Creates a value from its raw two's-complement bit pattern.
    #[inline]
    pub const fn from_raw(raw: i32) -> Self {
        Q16(raw)
    }

    /// Returns the raw two's-complement bit pattern.
    #[inline]
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// Creates a value from an integer, saturating at the format limits.
    #[inline]
    pub fn from_int(v: i32) -> Self {
        let wide = (v as i64) << FRAC_BITS;
        Q16(clamp_i64(wide))
    }

    /// Converts from `f64`, rounding to nearest and saturating.
    ///
    /// Non-finite inputs saturate: `NAN` maps to zero, `±INFINITY` to the
    /// corresponding rail.
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        if v.is_nan() {
            return Q16::ZERO;
        }
        let scaled = (v * SCALE as f64).round();
        if scaled >= i32::MAX as f64 {
            Q16::MAX
        } else if scaled <= i32::MIN as f64 {
            Q16::MIN
        } else {
            Q16(scaled as i32)
        }
    }

    /// Converts to `f64` exactly (every `Q16` is representable in an `f64`).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// Truncates towards negative infinity to an integer.
    #[inline]
    pub fn floor_int(self) -> i32 {
        self.0 >> FRAC_BITS
    }

    /// Returns the absolute value, saturating on `MIN`.
    #[inline]
    pub fn abs(self) -> Self {
        if self.0 == i32::MIN {
            Q16::MAX
        } else {
            Q16(self.0.abs())
        }
    }

    /// Returns `true` when the value is negative.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Q16(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Q16(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication with round-to-nearest.
    #[inline]
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = (self.0 as i64) * (rhs.0 as i64);
        // Round to nearest: add half an ulp before shifting.
        let rounded = (wide + (1 << (FRAC_BITS - 1))) >> FRAC_BITS;
        Q16(clamp_i64(rounded))
    }

    /// Saturating multiplication on a truncated multiplier array: the low
    /// `bits` partial-product columns of the fractional shift are dropped,
    /// so the result floors toward −∞ and zeroes its low `bits` bits.
    ///
    /// This is the approximate-computing kernel behind the
    /// `mul_truncation_bits` knob: a hardware array multiplier that omits
    /// the cheapest partial-product cells. Relative to the exact
    /// round-to-nearest [`Q16::saturating_mul`] the deviation is at most
    /// [`truncated_mul_error_ulps`]`(bits)` ulps — one ulp for dropping
    /// the rounding increment plus up to `2^bits − 1` from the masked low
    /// bits, both toward −∞.
    ///
    /// `bits == 0` degenerates to the exact multiply.
    ///
    /// # Examples
    ///
    /// ```
    /// use xpro_signal::fixed::{truncated_mul_error_ulps, Q16};
    ///
    /// let (a, b) = (Q16::from_f64(1.5), Q16::from_f64(2.25));
    /// let exact = a.saturating_mul(b);
    /// let approx = a.truncated_mul(b, 4);
    /// let dev = (exact.raw() as i64 - approx.raw() as i64).abs();
    /// assert!(dev <= truncated_mul_error_ulps(4));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics (debug) if `bits > 16`.
    #[inline]
    pub fn truncated_mul(self, rhs: Self, bits: u32) -> Self {
        debug_assert!(bits <= FRAC_BITS, "cannot drop more than {FRAC_BITS} bits");
        if bits == 0 {
            return self.saturating_mul(rhs);
        }
        let wide = (self.0 as i64) * (rhs.0 as i64);
        // Arithmetic shift floors toward −∞ (no rounding increment), and
        // the mask floors the low columns away in two's complement.
        let floored = wide >> FRAC_BITS;
        let masked = floored & !((1i64 << bits) - 1);
        Q16(clamp_i64(masked))
    }

    /// Saturating division; division by zero saturates to the signed rail.
    #[inline]
    pub fn saturating_div(self, rhs: Self) -> Self {
        if rhs.0 == 0 {
            return if self.0 >= 0 { Q16::MAX } else { Q16::MIN };
        }
        let wide = ((self.0 as i64) << FRAC_BITS) / (rhs.0 as i64);
        Q16(clamp_i64(wide))
    }

    /// Fixed-point square root via integer Newton iteration.
    ///
    /// Mirrors the "super computation" unit of the S-ALU (§3.1.1), which
    /// provides square root for the Std cell. Negative inputs return zero
    /// (hardware clamps; variance can only be non-negative in exact math).
    ///
    /// # Examples
    ///
    /// ```
    /// use xpro_signal::fixed::Q16;
    /// let v = Q16::from_f64(2.0).sqrt().to_f64();
    /// assert!((v - 1.41421356).abs() < 1e-4);
    /// ```
    pub fn sqrt(self) -> Self {
        if self.0 <= 0 {
            return Q16::ZERO;
        }
        // sqrt(x) in Q16.16: sqrt(raw / 2^16) = sqrt(raw) / 2^8,
        // so result_raw = sqrt(raw << 16) = isqrt(raw * 2^16).
        let wide = (self.0 as u64) << FRAC_BITS;
        Q16(isqrt_u64(wide) as i32)
    }

    /// Fixed-point natural exponential, `e^x`.
    ///
    /// Implemented with range reduction (x = k·ln2 + r, |r| ≤ ln2/2) and a
    /// degree-6 polynomial in Q16.16, matching the S-ALU exponent unit used by
    /// the RBF-kernel SVM cells. Overflow saturates at [`Q16::MAX`]; large
    /// negative inputs underflow to zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use xpro_signal::fixed::Q16;
    /// let v = Q16::from_f64(-1.0).exp().to_f64();
    /// assert!((v - 0.36787944).abs() < 1e-3);
    /// ```
    pub fn exp(self) -> Self {
        const LN2: i64 = 45_426; // ln(2) * 2^16, rounded
        let x = self.0 as i64;
        // e^x with x >= 11 overflows Q16.16 (e^11 > 32768).
        if x >= 11 * SCALE {
            return Q16::MAX;
        }
        // e^x with x <= -12 underflows to zero at Q16.16 resolution.
        if x <= -12 * SCALE {
            return Q16::ZERO;
        }
        // Range reduction: x = k*ln2 + r with r in [-ln2/2, ln2/2].
        let k = div_round_nearest(x, LN2);
        let r = x - k * LN2;
        // Polynomial e^r ~= 1 + r + r^2/2 + r^3/6 + r^4/24 + r^5/120 + r^6/720
        // with terms accumulated iteratively, all in Q16.16.
        let mut acc: i64 = SCALE; // 1
        let mut term: i64 = SCALE; // r^0 / 0!
        for n in 1..=6 {
            term = mul_q(term, r);
            term = div_round_nearest(term, n);
            acc += term;
        }
        // Scale by 2^k.
        let scaled = if k >= 0 {
            if k >= 32 {
                i64::MAX
            } else {
                acc.saturating_mul(1i64 << k)
            }
        } else {
            let shift = (-k) as u32;
            if shift >= 63 {
                0
            } else {
                div_round_nearest(acc, 1i64 << shift)
            }
        };
        Q16(clamp_i64(scaled))
    }

    /// Returns the smaller of two values.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two values.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

/// Worst-case deviation of [`Q16::truncated_mul`] from
/// [`Q16::saturating_mul`] in ulps: one ulp of forfeited rounding plus the
/// `2^bits − 1` masked low bits.
///
/// The static approximation analysis injects exactly this bound as fresh
/// affine noise at truncated cells; the approx-soundness proptests verify
/// it is never exceeded by the concrete kernel.
#[inline]
pub const fn truncated_mul_error_ulps(bits: u32) -> i64 {
    1i64 << bits
}

#[inline]
fn clamp_i64(v: i64) -> i32 {
    if v > i32::MAX as i64 {
        i32::MAX
    } else if v < i32::MIN as i64 {
        i32::MIN
    } else {
        v as i32
    }
}

/// Multiplies two Q16.16 numbers held in i64, with rounding.
///
/// Unlike [`Q16::saturating_mul`] this raw helper has no rails: operands
/// must stay within the extended 32-bit datapath range or the wide product
/// wraps `i64` silently in release builds.
#[inline]
fn mul_q(a: i64, b: i64) -> i64 {
    debug_assert!(
        a.unsigned_abs() < 1 << 31 && b.unsigned_abs() < 1 << 31,
        "mul_q operand outside the extended datapath range: {a} * {b}"
    );
    let wide = a * b;
    (wide + (1 << (FRAC_BITS - 1))) >> FRAC_BITS
}

/// Division rounded to the nearest integer (ties away from zero).
///
/// The pre-division bias `a ± b/2` is unguarded raw arithmetic: it wraps
/// silently in release builds if `a` sits within `b/2` of the `i64` rails.
#[inline]
fn div_round_nearest(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "divisor must be positive: {b}");
    debug_assert!(
        a.checked_add(b / 2).is_some() && a.checked_sub(b / 2).is_some(),
        "div_round_nearest bias would wrap: {a} / {b}"
    );
    if a >= 0 {
        (a + b / 2) / b
    } else {
        (a - b / 2) / b
    }
}

/// Integer square root of a u64 by Newton's method.
fn isqrt_u64(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut x = 1u64 << ((64 - v.leading_zeros()).div_ceil(2));
    loop {
        let next = (x + v / x) / 2;
        if next >= x {
            break;
        }
        x = next;
    }
    x
}

impl Add for Q16 {
    type Output = Q16;
    #[inline]
    fn add(self, rhs: Q16) -> Q16 {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Q16 {
    #[inline]
    fn add_assign(&mut self, rhs: Q16) {
        *self = *self + rhs;
    }
}

impl Sub for Q16 {
    type Output = Q16;
    #[inline]
    fn sub(self, rhs: Q16) -> Q16 {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Q16 {
    #[inline]
    fn sub_assign(&mut self, rhs: Q16) {
        *self = *self - rhs;
    }
}

impl Mul for Q16 {
    type Output = Q16;
    #[inline]
    fn mul(self, rhs: Q16) -> Q16 {
        self.saturating_mul(rhs)
    }
}

impl Div for Q16 {
    type Output = Q16;
    #[inline]
    fn div(self, rhs: Q16) -> Q16 {
        self.saturating_div(rhs)
    }
}

impl Neg for Q16 {
    type Output = Q16;
    #[inline]
    fn neg(self) -> Q16 {
        Q16(self.0.saturating_neg())
    }
}

impl Sum for Q16 {
    fn sum<I: Iterator<Item = Q16>>(iter: I) -> Q16 {
        iter.fold(Q16::ZERO, |a, b| a + b)
    }
}

impl From<i16> for Q16 {
    fn from(v: i16) -> Self {
        Q16::from_int(v as i32)
    }
}

impl fmt::Debug for Q16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q16({})", self.to_f64())
    }
}

impl fmt::Display for Q16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_integers() {
        for v in [-32768, -1, 0, 1, 2, 100, 32767] {
            assert_eq!(Q16::from_int(v).floor_int(), v, "value {v}");
        }
    }

    #[test]
    fn from_f64_rounds_to_nearest() {
        // 2^-17 is exactly half an ulp; rounds away from zero.
        let half_ulp = 1.0 / 131072.0;
        assert_eq!(Q16::from_f64(half_ulp), Q16::EPSILON);
        assert_eq!(Q16::from_f64(half_ulp / 2.0), Q16::ZERO);
    }

    #[test]
    fn from_f64_handles_non_finite() {
        assert_eq!(Q16::from_f64(f64::NAN), Q16::ZERO);
        assert_eq!(Q16::from_f64(f64::INFINITY), Q16::MAX);
        assert_eq!(Q16::from_f64(f64::NEG_INFINITY), Q16::MIN);
    }

    #[test]
    fn addition_saturates() {
        assert_eq!(Q16::MAX + Q16::ONE, Q16::MAX);
        assert_eq!(Q16::MIN - Q16::ONE, Q16::MIN);
    }

    #[test]
    fn multiplication_matches_float_within_ulp() {
        let cases = [(1.5, 2.25), (-3.0, 0.5), (100.0, 0.01), (-7.25, -2.0)];
        for (a, b) in cases {
            let (qa, qb) = (Q16::from_f64(a), Q16::from_f64(b));
            let got = (qa * qb).to_f64();
            // Compare against the exact product of the *quantized* inputs;
            // the multiply itself introduces at most one ulp of rounding.
            let want = qa.to_f64() * qb.to_f64();
            assert!(
                (got - want).abs() <= 1.0 / SCALE as f64,
                "{a} * {b} = {got}"
            );
        }
    }

    #[test]
    fn multiplication_saturates() {
        let big = Q16::from_int(30000);
        assert_eq!(big * big, Q16::MAX);
        assert_eq!(big * -big, Q16::MIN);
    }

    #[test]
    fn truncated_mul_zero_bits_is_exact() {
        let (a, b) = (Q16::from_f64(-7.25), Q16::from_f64(3.125));
        assert_eq!(a.truncated_mul(b, 0), a.saturating_mul(b));
    }

    #[test]
    fn truncated_mul_stays_within_declared_ulps() {
        // Deterministic pseudo-random coverage of the whole working range.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Q16::from_raw((state >> 33) as i32)
        };
        for bits in [1u32, 4, 8, 12, 16] {
            for _ in 0..500 {
                let (a, b) = (next(), next());
                let exact = a.saturating_mul(b).raw() as i64;
                let approx = a.truncated_mul(b, bits).raw() as i64;
                assert!(
                    (exact - approx).abs() <= truncated_mul_error_ulps(bits),
                    "{a:?} * {b:?} with {bits} bits: exact {exact}, approx {approx}"
                );
                // Truncation floors: never above the exact product.
                assert!(approx <= exact, "{a:?} * {b:?}");
            }
        }
    }

    #[test]
    fn truncated_mul_zeroes_low_bits_and_saturates() {
        let v = Q16::from_f64(1.0 + 1.0 / 65536.0);
        let got = v.truncated_mul(Q16::ONE, 8);
        assert_eq!(got.raw() & 0xff, 0);
        let big = Q16::from_int(30000);
        assert_eq!(big.truncated_mul(big, 8), Q16::MAX);
    }

    #[test]
    fn division_by_zero_saturates() {
        assert_eq!(Q16::ONE / Q16::ZERO, Q16::MAX);
        assert_eq!(-Q16::ONE / Q16::ZERO, Q16::MIN);
    }

    #[test]
    fn division_matches_float() {
        let got = (Q16::from_f64(1.0) / Q16::from_f64(3.0)).to_f64();
        assert!((got - 1.0 / 3.0).abs() < 1e-4);
    }

    #[test]
    fn sqrt_matches_float() {
        for v in [0.25, 1.0, 2.0, 9.0, 1000.0, 0.0001] {
            let got = Q16::from_f64(v).sqrt().to_f64();
            assert!((got - v.sqrt()).abs() < 2e-2, "sqrt({v}) = {got}");
        }
    }

    #[test]
    fn sqrt_of_negative_is_zero() {
        assert_eq!(Q16::from_f64(-4.0).sqrt(), Q16::ZERO);
    }

    #[test]
    fn exp_matches_float_over_working_range() {
        for v in [-8.0, -3.0, -1.0, -0.1, 0.0, 0.1, 1.0, 2.0, 5.0, 9.0] {
            let got = Q16::from_f64(v).exp().to_f64();
            let want = v.exp();
            let tol = (want * 1e-3).max(3e-4);
            assert!((got - want).abs() < tol, "exp({v}) = {got}, want {want}");
        }
    }

    #[test]
    fn exp_saturates_and_underflows() {
        assert_eq!(Q16::from_int(20).exp(), Q16::MAX);
        assert_eq!(Q16::from_int(-20).exp(), Q16::ZERO);
    }

    #[test]
    fn abs_handles_min() {
        assert_eq!(Q16::MIN.abs(), Q16::MAX);
        assert_eq!(Q16::from_f64(-1.5).abs().to_f64(), 1.5);
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(Q16::from_f64(1.5).to_string(), "1.5");
        assert_eq!(format!("{:?}", Q16::from_f64(-2.0)), "Q16(-2)");
    }

    #[test]
    fn sum_folds_from_zero() {
        let total: Q16 = [1.0, 2.0, 3.5].iter().map(|&v| Q16::from_f64(v)).sum();
        assert_eq!(total.to_f64(), 6.5);
    }

    #[test]
    fn ordering_follows_value() {
        assert!(Q16::from_f64(-1.0) < Q16::ZERO);
        assert!(Q16::from_f64(0.5) < Q16::ONE);
        assert_eq!(Q16::from_f64(2.0).max(Q16::from_f64(3.0)).to_f64(), 3.0);
        assert_eq!(Q16::from_f64(2.0).min(Q16::from_f64(3.0)).to_f64(), 2.0);
    }
}
