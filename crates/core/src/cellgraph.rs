//! The functional-cell dataflow graph of an XPro instance (paper Fig. 2).
//!
//! Cells are the fine-grained computing primitives the cross-end
//! architecture distributes between the sensor and the aggregator. The graph
//! records, for every cell, what it computes ([`xpro_hw::ModuleKind`]) and
//! which upstream data it consumes; producers expose *ports* so that one
//! output shared by several consumers is transmitted at most once across the
//! wireless link (the generalization of the paper's "grouped cells" dummy
//! node, see `DESIGN.md` §7).

use crate::layout::Domain;
use xpro_hw::ModuleKind;

/// Index of a cell within a [`CellGraph`].
pub type CellId = usize;

/// One output port of a producer (a cell or the raw data source).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// Producing cell, or `None` for the raw sensed segment.
    pub producer: Option<CellId>,
    /// Port index on the producer (cells may expose several, e.g. a DWT
    /// level outputs approximation and detail separately).
    pub port: usize,
}

impl PortRef {
    /// The raw sensed segment (the paper's "D" source data).
    pub const RAW: PortRef = PortRef {
        producer: None,
        port: 0,
    };

    /// Port 0 of a cell.
    pub fn cell(id: CellId) -> PortRef {
        PortRef {
            producer: Some(id),
            port: 0,
        }
    }
}

/// A functional cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// What the cell computes.
    pub module: ModuleKind,
    /// The domain the cell belongs to (for features/DWT; fusion and SVMs
    /// span domains and use [`Domain::Time`] as a placeholder).
    pub domain: Domain,
    /// Output ports: samples produced per event on each port.
    pub output_samples: Vec<u64>,
    /// Inputs consumed, as (port, samples-consumed) pairs.
    pub inputs: Vec<PortRef>,
    /// Human-readable label, e.g. `"Kurt@d2"`.
    pub label: String,
}

/// The dataflow graph: raw source → DWT chain → feature cells → SVM bases →
/// score fusion.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellGraph {
    cells: Vec<Cell>,
    /// Samples in the raw segment (port [`PortRef::RAW`]).
    raw_samples: u64,
}

impl CellGraph {
    /// Creates an empty graph over a raw segment of the given length.
    pub fn new(raw_samples: u64) -> Self {
        CellGraph {
            cells: Vec::new(),
            raw_samples,
        }
    }

    /// Adds a cell, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if an input references a not-yet-added cell or an out-of-range
    /// port (the graph must be built in topological order).
    pub fn add_cell(&mut self, cell: Cell) -> CellId {
        for input in &cell.inputs {
            if let Some(p) = input.producer {
                assert!(p < self.cells.len(), "input references unknown cell {p}");
                assert!(
                    input.port < self.cells[p].output_samples.len(),
                    "input references port {} of cell {p} which has {} ports",
                    input.port,
                    self.cells[p].output_samples.len()
                );
            }
        }
        self.cells.push(cell);
        self.cells.len() - 1
    }

    /// The cells in insertion (topological) order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the graph has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Samples in the raw segment.
    pub fn raw_samples(&self) -> u64 {
        self.raw_samples
    }

    /// Samples produced on a port.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn port_samples(&self, port: PortRef) -> u64 {
        match port.producer {
            None => self.raw_samples,
            Some(c) => self.cells[c].output_samples[port.port],
        }
    }

    /// Ids of cells that read the raw segment directly — the paper's
    /// "grouped" cells.
    pub fn raw_consumers(&self) -> Vec<CellId> {
        self.consumers_of(PortRef::RAW)
    }

    /// Ids of cells consuming a given port.
    pub fn consumers_of(&self, port: PortRef) -> Vec<CellId> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.inputs.contains(&port))
            .map(|(i, _)| i)
            .collect()
    }

    /// Every distinct producer port that has at least one consumer,
    /// including [`PortRef::RAW`].
    pub fn active_ports(&self) -> Vec<PortRef> {
        let mut seen = Vec::new();
        for cell in &self.cells {
            for &input in &cell.inputs {
                if !seen.contains(&input) {
                    seen.push(input);
                }
            }
        }
        seen
    }

    /// Id of the final cell (by convention the score-fusion cell, added
    /// last), whose output is the classification result.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    pub fn result_cell(&self) -> CellId {
        assert!(!self.cells.is_empty(), "empty cell graph");
        self.cells.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpro_signal::stats::FeatureKind;

    fn feature_cell(kind: FeatureKind, inputs: Vec<PortRef>) -> Cell {
        Cell {
            module: ModuleKind::Feature {
                kind,
                input_len: 128,
                reuses_var: false,
            },
            domain: Domain::Time,
            output_samples: vec![1],
            inputs,
            label: format!("{kind}@time"),
        }
    }

    #[test]
    fn build_small_graph() {
        let mut g = CellGraph::new(128);
        let max = g.add_cell(feature_cell(FeatureKind::Max, vec![PortRef::RAW]));
        let min = g.add_cell(feature_cell(FeatureKind::Min, vec![PortRef::RAW]));
        let svm = g.add_cell(Cell {
            module: ModuleKind::Svm {
                support_vectors: 5,
                dims: 2,
                rbf: true,
            },
            domain: Domain::Time,
            output_samples: vec![1],
            inputs: vec![PortRef::cell(max), PortRef::cell(min)],
            label: "svm0".into(),
        });
        assert_eq!(g.len(), 3);
        assert_eq!(g.raw_consumers(), vec![max, min]);
        assert_eq!(g.consumers_of(PortRef::cell(max)), vec![svm]);
        assert_eq!(g.result_cell(), svm);
        assert_eq!(g.port_samples(PortRef::RAW), 128);
        assert_eq!(g.port_samples(PortRef::cell(svm)), 1);
    }

    #[test]
    fn active_ports_deduplicate() {
        let mut g = CellGraph::new(64);
        g.add_cell(feature_cell(FeatureKind::Max, vec![PortRef::RAW]));
        g.add_cell(feature_cell(FeatureKind::Min, vec![PortRef::RAW]));
        assert_eq!(g.active_ports(), vec![PortRef::RAW]);
    }

    #[test]
    #[should_panic(expected = "unknown cell")]
    fn forward_reference_rejected() {
        let mut g = CellGraph::new(64);
        g.add_cell(feature_cell(FeatureKind::Max, vec![PortRef::cell(3)]));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn result_of_empty_graph_panics() {
        CellGraph::new(64).result_cell();
    }
}
