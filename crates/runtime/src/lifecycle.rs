//! Node lifecycle faults: crash/reboot windows and aggregator outages.
//!
//! Crash schedules are *precomputed* per node from exponential up/down
//! draws on a dedicated, node-salted RNG stream. Like the burst channel's
//! state chain, this makes the fault environment a pure function of the
//! seed and the lifecycle parameters: an adaptive run and a static run
//! with the same seed crash at the same instants, so their outcomes are
//! directly comparable.
//!
//! Aggregator outages are deterministic periodic windows (the k-th outage,
//! k ≥ 1, covers `[k·period, k·period + duration)`), modelling scheduled
//! unavailability such as gateway radio duty-cycling or phone OS doze.

use crate::rng::{stream_seed, XorShiftRng};

/// Salt multiplied by `(node + 1)` and XOR-ed into the seed so each node's
/// lifecycle draws come from an independent stream.
const LIFECYCLE_STREAM_SALT: u64 = 0x5851_F42D_4C95_7F2D;

/// Precomputed crash schedule of one node.
///
/// `windows` holds the node's down intervals `[start, end)` — crash to end
/// of reboot warm-up — sorted and non-overlapping by construction.
#[derive(Clone, Debug, Default)]
pub struct NodeLifecycle {
    windows: Vec<(f64, f64)>,
}

impl NodeLifecycle {
    /// A node that never crashes.
    pub fn healthy() -> Self {
        NodeLifecycle::default()
    }

    /// Draws the crash schedule of node `node` over `[0, duration_s)`:
    /// exponential up-times with mean `mtbf_s`, exponential repair times
    /// with mean `mttr_s`, plus a fixed `warmup_s` after every repair
    /// before the node produces segments again.
    pub fn generate(
        node: usize,
        mtbf_s: f64,
        mttr_s: f64,
        warmup_s: f64,
        duration_s: f64,
        seed: u64,
    ) -> Self {
        if mtbf_s <= 0.0 {
            return NodeLifecycle::healthy();
        }
        let mut rng = XorShiftRng::new(stream_seed(seed, LIFECYCLE_STREAM_SALT, node as u64));
        let mut exp = move |mean: f64| -> f64 {
            // Inverse-CDF sample; next_f64() < 1 keeps ln(1-u) finite.
            -mean * (1.0 - rng.next_f64()).ln()
        };
        let mut windows = Vec::new();
        let mut t = 0.0;
        loop {
            t += exp(mtbf_s);
            if t >= duration_s {
                break;
            }
            let down = exp(mttr_s) + warmup_s;
            windows.push((t, t + down));
            t += down;
        }
        NodeLifecycle { windows }
    }

    /// If the node is down at `t_s`, returns when its current down window
    /// ends (crash repair + warm-up).
    pub fn down_at(&self, t_s: f64) -> Option<f64> {
        self.windows
            .iter()
            .find(|(start, end)| (*start..*end).contains(&t_s))
            .map(|(_, end)| *end)
    }

    /// Whether a segment in flight since `arrival_s` is lost by time
    /// `now_s`: the node is currently down, or it crashed somewhere in
    /// `(arrival_s, now_s]` (a reboot wipes in-flight segment state, so
    /// the segment is gone even if the node is back up).
    pub fn interrupted(&self, arrival_s: f64, now_s: f64) -> bool {
        self.down_at(now_s).is_some()
            || self
                .windows
                .iter()
                .any(|(start, _)| *start > arrival_s && *start <= now_s)
    }

    /// Number of crashes scheduled within the run.
    pub fn crashes(&self) -> u64 {
        self.windows.len() as u64
    }

    /// Total down time overlapping `[0, duration_s)`.
    pub fn down_s(&self, duration_s: f64) -> f64 {
        self.windows
            .iter()
            .map(|(start, end)| (end.min(duration_s) - start).max(0.0))
            .sum()
    }
}

/// Deterministic periodic aggregator outage schedule.
#[derive(Clone, Copy, Debug, Default)]
pub struct OutageSchedule {
    period_s: f64,
    duration_s: f64,
}

impl OutageSchedule {
    /// Recurring outages of `duration_s` every `period_s` (first at
    /// `period_s`, never at t = 0). Non-positive values disable it.
    pub fn new(period_s: f64, duration_s: f64) -> Self {
        if period_s > 0.0 && duration_s > 0.0 {
            OutageSchedule {
                period_s,
                duration_s,
            }
        } else {
            OutageSchedule::default()
        }
    }

    /// If the aggregator is out at `t_s`, returns when the window ends.
    pub fn outage_at(&self, t_s: f64) -> Option<f64> {
        if self.period_s <= 0.0 {
            return None;
        }
        let k = (t_s / self.period_s).floor();
        if k >= 1.0 && t_s < k * self.period_s + self.duration_s {
            Some(k * self.period_s + self.duration_s)
        } else {
            None
        }
    }

    /// Total outage time overlapping `[0, run_s)`.
    pub fn total_outage_s(&self, run_s: f64) -> f64 {
        if self.period_s <= 0.0 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut k = 1.0;
        while k * self.period_s < run_s {
            total += self.duration_s.min(run_s - k * self.period_s);
            k += 1.0;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_node_is_always_up() {
        let life = NodeLifecycle::healthy();
        assert_eq!(life.down_at(0.0), None);
        assert_eq!(life.down_at(1e6), None);
        assert!(!life.interrupted(0.0, 1e6));
        assert_eq!(life.crashes(), 0);
        assert_eq!(life.down_s(100.0), 0.0);
    }

    #[test]
    fn generated_windows_are_sorted_and_disjoint() {
        let life = NodeLifecycle::generate(3, 5.0, 1.0, 0.25, 1_000.0, 42);
        assert!(life.crashes() > 10, "expected many crashes over 1000 s");
        for pair in life.windows.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlapping windows {pair:?}");
        }
        for (start, end) in &life.windows {
            assert!(end - start >= 0.25, "warm-up not applied: {start}..{end}");
            assert!(*start < 1_000.0);
        }
    }

    #[test]
    fn down_at_and_interrupted_agree_with_the_windows() {
        let life = NodeLifecycle {
            windows: vec![(2.0, 3.0), (10.0, 12.5)],
        };
        assert_eq!(life.down_at(2.5), Some(3.0));
        assert_eq!(life.down_at(3.0), None); // end is exclusive
        assert_eq!(life.down_at(11.0), Some(12.5));
        // Crash at 2.0 wipes a segment that arrived at 1.5 even though the
        // node is back up at 5.0.
        assert!(life.interrupted(1.5, 5.0));
        // A segment arriving after the reboot is fine.
        assert!(!life.interrupted(3.5, 5.0));
        // Currently down counts as interrupted regardless of arrival.
        assert!(life.interrupted(10.5, 11.0));
        assert_eq!(life.crashes(), 2);
        assert!((life.down_s(100.0) - 3.5).abs() < 1e-12);
        assert!((life.down_s(11.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn same_seed_reproduces_the_schedule_per_node() {
        let a = NodeLifecycle::generate(1, 7.0, 2.0, 0.0, 500.0, 9);
        let b = NodeLifecycle::generate(1, 7.0, 2.0, 0.0, 500.0, 9);
        assert_eq!(a.windows, b.windows);
        let c = NodeLifecycle::generate(2, 7.0, 2.0, 0.0, 500.0, 9);
        assert_ne!(a.windows, c.windows, "nodes must draw distinct streams");
    }

    #[test]
    fn outage_schedule_is_periodic_and_skips_time_zero() {
        let sched = OutageSchedule::new(10.0, 2.0);
        assert_eq!(sched.outage_at(0.0), None);
        assert_eq!(sched.outage_at(1.0), None);
        assert_eq!(sched.outage_at(10.0), Some(12.0));
        assert_eq!(sched.outage_at(11.999), Some(12.0));
        assert_eq!(sched.outage_at(12.0), None);
        assert_eq!(sched.outage_at(20.5), Some(22.0));
        assert!((sched.total_outage_s(35.0) - 6.0).abs() < 1e-12);
        assert!((sched.total_outage_s(11.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_outage_schedule_is_inert() {
        let sched = OutageSchedule::new(0.0, 5.0);
        assert_eq!(sched.outage_at(100.0), None);
        assert_eq!(sched.total_outage_s(1e6), 0.0);
    }
}
