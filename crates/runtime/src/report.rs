//! Structured results of a streaming run: per-node statistics, aggregator
//! and channel utilization, fault/adaptation logs, and the raw metrics
//! registry.

use crate::controller::{PartitionSwitch, PlanAudit, TierTimes};
use crate::metrics::MetricsRegistry;
use crate::sketch::QuantileSketch;
use std::fmt::Write as _;
use xpro_core::PlanCacheStats;

/// Latency percentiles over the completed segments of one node, digested
/// from a fixed-size mergeable [`QuantileSketch`]: `count` and `max_s`
/// are exact, the percentiles and mean carry the sketch's documented
/// worst-case relative error ([`QuantileSketch::REL_ERROR`] ≈ 0.39 %).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of (finite) samples the statistics were computed from
    /// (exact).
    pub count: u64,
    /// Mean latency in seconds (within the sketch error of the exact
    /// sample mean).
    pub mean_s: f64,
    /// Median (within the sketch error).
    pub p50_s: f64,
    /// 95th percentile (within the sketch error).
    pub p95_s: f64,
    /// 99th percentile (within the sketch error).
    pub p99_s: f64,
    /// Worst observed (exact — the sketch tracks the maximum outside the
    /// bucket array, so soundness checks against static WCRT bounds need
    /// no sketch slack).
    pub max_s: f64,
}

impl LatencyStats {
    /// Digests a finished sketch. An empty sketch yields the zeroed
    /// statistics with an explicit `count` of 0, never a panic.
    pub fn from_sketch(sketch: &QuantileSketch) -> Self {
        if sketch.count() == 0 {
            return LatencyStats::default();
        }
        LatencyStats {
            count: sketch.count(),
            mean_s: sketch.mean(),
            p50_s: sketch.quantile(0.50),
            p95_s: sketch.quantile(0.95),
            p99_s: sketch.quantile(0.99),
            max_s: sketch.max(),
        }
    }

    /// Statistics of a sample set, via the same sketch the executor
    /// feeds incrementally — bulk construction and one-by-one insertion
    /// are identical by construction (property-tested in the sketch
    /// suite).
    ///
    /// Non-finite samples (NaN, ±∞) are discarded — a NaN must not
    /// poison the percentiles. An empty (or all-non-finite) input yields
    /// the zeroed statistics with an explicit `count` of 0.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        LatencyStats::from_sketch(&QuantileSketch::from_samples(samples))
    }
}

/// One sensor node's view of the run.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeReport {
    /// Node index in the fleet.
    pub node: usize,
    /// Segments that arrived during the run.
    pub segments_offered: u64,
    /// Segments whose classification result reached the aggregator.
    pub segments_completed: u64,
    /// Segments abandoned after exhausting frame retries.
    pub segments_dropped: u64,
    /// Segments skipped at their deadline (graceful degradation).
    pub segments_timed_out: u64,
    /// Segments lost because the node was down (crash window, reboot
    /// warm-up or battery depletion) or crashed while they were in flight.
    pub segments_lost_to_crash: u64,
    /// Segments intentionally skipped by the controller's shedding tier.
    pub segments_shed: u64,
    /// Segments rejected by the aggregator's bounded inbox.
    pub segments_overflowed: u64,
    /// Segments rejected by the tenant's rate quota at admission (0
    /// without a tenant table).
    pub segments_admission_rejected: u64,
    /// Segments dropped while the tenant was quarantined by its circuit
    /// breaker (0 without a tenant table).
    pub segments_quarantined: u64,
    /// Crashes scheduled for this node during the run.
    pub crashes: u64,
    /// Whether the node exhausted its energy budget and shut down.
    pub battery_depleted: bool,
    /// Frame transmission attempts, including retransmissions.
    pub frame_attempts: u64,
    /// Attempts lost on the link.
    pub frame_drops: u64,
    /// Retransmissions performed.
    pub retries: u64,
    /// Completed segments per simulated second.
    pub throughput_hz: f64,
    /// End-to-end latency of completed segments.
    pub latency: LatencyStats,
    /// In-sensor compute energy spent over the run (pJ).
    pub compute_pj: f64,
    /// Sensor radio energy spent over the run (pJ), retransmissions
    /// included.
    pub wireless_pj: f64,
    /// Sensor battery life at this run's average power draw (hours).
    pub battery_hours: f64,
    /// Fraction of the sensor battery consumed during the run.
    pub battery_drawdown: f64,
}

impl NodeReport {
    /// Total sensor energy over the run in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.wireless_pj
    }

    /// Segments that did not complete, over every loss bucket.
    pub fn segments_lost(&self) -> u64 {
        self.segments_dropped
            + self.segments_timed_out
            + self.segments_lost_to_crash
            + self.segments_shed
            + self.segments_overflowed
            + self.segments_admission_rejected
            + self.segments_quarantined
    }
}

/// The shared aggregator's view of the run.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregatorReport {
    /// Batches the CPU woke up for (consecutive segments processed
    /// back-to-back count as one batch).
    pub batches: u64,
    /// Largest number of segments served in one batch.
    pub max_batch: u64,
    /// Worst inbox occupancy observed (jobs queued or in service) — the
    /// dynamic counterpart of the static queue bound derived by
    /// `xpro_analyze::timing`.
    pub peak_inbox: u64,
    /// Time the CPU spent executing cells.
    pub busy_s: f64,
    /// CPU busy time over the simulated duration.
    pub utilization: f64,
    /// Aggregator energy (radio + compute) over the run (pJ).
    pub energy_pj: f64,
    /// Aggregator battery life at this run's average power draw (hours).
    pub battery_hours: f64,
    /// Total scheduled outage time during the run.
    pub outage_s: f64,
    /// Segments rejected by the bounded inbox (fleet-wide).
    pub inbox_overflows: u64,
    /// Segments rejected by tenant rate quotas (fleet-wide; 0 without a
    /// tenant table).
    pub admission_rejected: u64,
    /// Segments dropped at the door of quarantined tenants (fleet-wide;
    /// 0 without a tenant table).
    pub quarantine_dropped: u64,
}

/// One tenant's view of the run: its nodes' traffic folded in node
/// order, its admission counters, and its tier/breaker history. Present
/// only when the configuration carries a tenant table.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantReport {
    /// Tenant name from its [`crate::TenantSpec`].
    pub name: String,
    /// First global node index of the tenant's contiguous range.
    pub first_node: usize,
    /// Number of nodes the tenant owns.
    pub nodes: usize,
    /// Segments its nodes offered (arrivals seen).
    pub segments_offered: u64,
    /// Jobs admitted past quota and inbox checks.
    pub admitted: u64,
    /// Segments completed at the aggregator.
    pub completed: u64,
    /// Jobs rejected by the rate quota.
    pub admission_rejected: u64,
    /// Jobs rejected by inbox capacity (reserved + shared exhausted).
    pub inbox_overflow: u64,
    /// Jobs dropped while quarantined.
    pub quarantine_dropped: u64,
    /// Times the circuit breaker tripped.
    pub quarantines: u64,
    /// Reserved inbox slots under the weighted-fair split.
    pub reserved_inbox: u64,
    /// Worst per-tenant inbox occupancy observed.
    pub peak_inbox: u64,
    /// Completed over offered (0 when nothing was offered).
    pub delivery_rate: f64,
    /// End-to-end latency over the tenant's completed segments.
    pub latency: LatencyStats,
    /// Time the tenant spent per degradation tier.
    pub tier_times: TierTimes,
}

/// Results of one [`crate::FleetExecutor::run`]. Deliberately ignorant of
/// how the run was sharded: the report is byte-identical for any shard
/// count.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Per-node statistics, indexed by node.
    pub nodes: Vec<NodeReport>,
    /// Per-tenant statistics, in tenant declaration order (empty without
    /// a tenant table).
    pub tenants: Vec<TenantReport>,
    /// Fleet-wide latency, digested from the merge of every node's
    /// quantile sketch (merged in global node order; exact count/max,
    /// sketch-bounded percentiles).
    pub fleet: LatencyStats,
    /// Aggregator statistics.
    pub aggregator: AggregatorReport,
    /// Time the shared channel carried frames.
    pub channel_busy_s: f64,
    /// Channel busy time over the simulated duration.
    pub channel_utilization: f64,
    /// Time the bursty channel spent in its bad state (0 without bursts).
    pub channel_bad_s: f64,
    /// Every partition switch the adaptive controller applied, in order.
    pub partition_switches: Vec<PartitionSwitch>,
    /// Time the run spent per degradation tier (all normal when the
    /// controller is off).
    pub tier_times: TierTimes,
    /// Certified vs rejected epoch plans: every re-plan's min-cut
    /// certificate is re-checked before the cut is committed (all zero
    /// when the controller is off or never left the band).
    pub plan_audit: PlanAudit,
    /// The controller's memoized plan-cache counters: hits (re-verified
    /// against the min-cut certificate), misses (fresh λ-sweeps) and
    /// rejected entries (failed re-verification, evicted and
    /// regenerated). All zero when the controller is off.
    pub plan_cache: PlanCacheStats,
    /// Raw counters/gauges/histograms recorded during the run.
    pub metrics: MetricsRegistry,
}

impl RunReport {
    /// Segments completed fleet-wide.
    pub fn total_completed(&self) -> u64 {
        self.nodes.iter().map(|n| n.segments_completed).sum()
    }

    /// Segments lost fleet-wide: retry exhaustion, deadline skips, crash
    /// and battery losses, controller shedding and inbox overflows.
    pub fn total_lost(&self) -> u64 {
        self.nodes.iter().map(NodeReport::segments_lost).sum()
    }

    /// Retransmissions fleet-wide.
    pub fn total_retries(&self) -> u64 {
        self.nodes.iter().map(|n| n.retries).sum()
    }

    /// Fleet-wide latency over every completed segment: the digest of
    /// the merged per-node sketches. (Before the sketch existed this was
    /// approximated from the coarse `latency_s` metrics histogram, with
    /// up to ~9 % quantile error; the mergeable sketch pins it to
    /// [`QuantileSketch::REL_ERROR`].)
    pub fn fleet_latency(&self) -> LatencyStats {
        self.fleet
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let fleet = self.fleet_latency();
        let _ = writeln!(
            out,
            "fleet: {} nodes, {:.1} s simulated — {} segments completed, {} lost, {} retries",
            self.nodes.len(),
            self.duration_s,
            self.total_completed(),
            self.total_lost(),
            self.total_retries(),
        );
        let _ = writeln!(
            out,
            "latency (fleet): p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
            fleet.p50_s * 1e3,
            fleet.p95_s * 1e3,
            fleet.p99_s * 1e3,
            fleet.max_s * 1e3,
        );
        let _ = writeln!(
            out,
            "channel: {:.1} % busy; aggregator CPU: {:.1} % busy, {} batches (max {}), inbox peak {}",
            self.channel_utilization * 100.0,
            self.aggregator.utilization * 100.0,
            self.aggregator.batches,
            self.aggregator.max_batch,
            self.aggregator.peak_inbox,
        );
        let crashes: u64 = self.nodes.iter().map(|n| n.crashes).sum();
        if crashes > 0
            || self.channel_bad_s > 0.0
            || self.aggregator.outage_s > 0.0
            || self.aggregator.inbox_overflows > 0
        {
            let _ = writeln!(
                out,
                "faults: {} crashes, {:.1} s channel bursts, {:.1} s aggregator outage, {} inbox overflows",
                crashes,
                self.channel_bad_s,
                self.aggregator.outage_s,
                self.aggregator.inbox_overflows,
            );
        }
        if !self.tenants.is_empty() {
            let _ = writeln!(
                out,
                "{:>12} {:>6} {:>9} {:>9} {:>8} {:>8} {:>8} {:>5} {:>9} {:>7}",
                "tenant",
                "nodes",
                "offered",
                "done",
                "quota-rej",
                "overflow",
                "quarant",
                "trips",
                "p99 ms",
                "deliv %"
            );
            for t in &self.tenants {
                let _ = writeln!(
                    out,
                    "{:>12} {:>6} {:>9} {:>9} {:>8} {:>8} {:>8} {:>5} {:>9.3} {:>7.1}",
                    t.name,
                    t.nodes,
                    t.segments_offered,
                    t.completed,
                    t.admission_rejected,
                    t.inbox_overflow,
                    t.quarantine_dropped,
                    t.quarantines,
                    t.latency.p99_s * 1e3,
                    t.delivery_rate * 100.0,
                );
            }
        }
        if !self.partition_switches.is_empty()
            || self.tier_times.classify_only_s > 0.0
            || self.tier_times.shed_s > 0.0
        {
            let _ = writeln!(
                out,
                "adaptation: {} partition switches ({} plans certified, {} rejected); tiers: {:.1} s normal, {:.1} s classify-only, {:.1} s shed",
                self.partition_switches.len(),
                self.plan_audit.certified,
                self.plan_audit.rejected,
                self.tier_times.normal_s,
                self.tier_times.classify_only_s,
                self.tier_times.shed_s,
            );
            if self.plan_cache.hits + self.plan_cache.misses > 0 {
                let _ = writeln!(
                    out,
                    "plan cache: {} hits, {} misses, {} rejected ({:.0} % hit rate)",
                    self.plan_cache.hits,
                    self.plan_cache.misses,
                    self.plan_cache.rejected,
                    self.plan_cache.hit_rate() * 100.0,
                );
            }
            for s in &self.partition_switches {
                let _ = writeln!(
                    out,
                    "  t={:<8.3} -> {} ({} sensor cells, factor {:.2})",
                    s.time_s,
                    s.tier.as_str(),
                    s.sensor_cells,
                    s.factor,
                );
            }
        }
        let _ = writeln!(
            out,
            "{:>4} {:>9} {:>9} {:>6} {:>7} {:>9} {:>9} {:>9} {:>10} {:>12}",
            "node",
            "offered",
            "done",
            "lost",
            "retries",
            "p50 ms",
            "p99 ms",
            "thru Hz",
            "energy nJ",
            "battery h"
        );
        for n in &self.nodes {
            let _ = writeln!(
                out,
                "{:>4} {:>9} {:>9} {:>6} {:>7} {:>9.3} {:>9.3} {:>9.2} {:>10.2} {:>12.1}",
                n.node,
                n.segments_offered,
                n.segments_completed,
                n.segments_lost(),
                n.retries,
                n.latency.p50_s * 1e3,
                n.latency.p99_s * 1e3,
                n.throughput_hz,
                n.total_pj() * 1e-3,
                n.battery_hours,
            );
        }
        out
    }

    /// The report as a JSON object (hand-rolled; the workspace carries no
    /// serialization dependency).
    pub fn to_json(&self) -> String {
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_string()
            }
        }
        let fleet = self.fleet_latency();
        let latency_json = |l: &LatencyStats| -> String {
            format!(
                "{{\"count\":{},\"mean_s\":{},\"p50_s\":{},\"p95_s\":{},\"p99_s\":{},\"max_s\":{}}}",
                l.count,
                num(l.mean_s),
                num(l.p50_s),
                num(l.p95_s),
                num(l.p99_s),
                num(l.max_s)
            )
        };
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                format!(
                    "{{\"node\":{},\"offered\":{},\"completed\":{},\"dropped\":{},\
                     \"timed_out\":{},\"lost_to_crash\":{},\"shed\":{},\"overflowed\":{},\
                     \"admission_rejected\":{},\"quarantined\":{},\
                     \"crashes\":{},\"battery_depleted\":{},\
                     \"frame_attempts\":{},\"frame_drops\":{},\"retries\":{},\
                     \"throughput_hz\":{},\"latency\":{},\"compute_pj\":{},\"wireless_pj\":{},\
                     \"battery_hours\":{},\"battery_drawdown\":{}}}",
                    n.node,
                    n.segments_offered,
                    n.segments_completed,
                    n.segments_dropped,
                    n.segments_timed_out,
                    n.segments_lost_to_crash,
                    n.segments_shed,
                    n.segments_overflowed,
                    n.segments_admission_rejected,
                    n.segments_quarantined,
                    n.crashes,
                    n.battery_depleted,
                    n.frame_attempts,
                    n.frame_drops,
                    n.retries,
                    num(n.throughput_hz),
                    latency_json(&n.latency),
                    num(n.compute_pj),
                    num(n.wireless_pj),
                    num(n.battery_hours),
                    num(n.battery_drawdown),
                )
            })
            .collect();
        let tier_times_json = |t: &TierTimes| -> String {
            format!(
                "{{\"normal_s\":{},\"classify_only_s\":{},\"shed_s\":{}}}",
                num(t.normal_s),
                num(t.classify_only_s),
                num(t.shed_s)
            )
        };
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .map(|t| {
                format!(
                    "{{\"name\":{:?},\"first_node\":{},\"nodes\":{},\"offered\":{},\
                     \"admitted\":{},\"completed\":{},\"admission_rejected\":{},\
                     \"inbox_overflow\":{},\"quarantine_dropped\":{},\"quarantines\":{},\
                     \"reserved_inbox\":{},\"peak_inbox\":{},\"delivery_rate\":{},\
                     \"latency\":{},\"tier_times\":{}}}",
                    t.name,
                    t.first_node,
                    t.nodes,
                    t.segments_offered,
                    t.admitted,
                    t.completed,
                    t.admission_rejected,
                    t.inbox_overflow,
                    t.quarantine_dropped,
                    t.quarantines,
                    t.reserved_inbox,
                    t.peak_inbox,
                    num(t.delivery_rate),
                    latency_json(&t.latency),
                    tier_times_json(&t.tier_times),
                )
            })
            .collect();
        let switches: Vec<String> = self
            .partition_switches
            .iter()
            .map(|s| {
                format!(
                    "{{\"time_s\":{},\"tier\":\"{}\",\"sensor_cells\":{},\"factor\":{}}}",
                    num(s.time_s),
                    s.tier.as_str(),
                    s.sensor_cells,
                    num(s.factor),
                )
            })
            .collect();
        format!(
            "{{\"duration_s\":{},\"completed\":{},\"lost\":{},\"retries\":{},\
             \"latency\":{},\"channel_utilization\":{},\"channel_bad_s\":{},\
             \"partition_switches\":[{}],\
             \"tier_times\":{{\"normal_s\":{},\"classify_only_s\":{},\"shed_s\":{}}},\
             \"plan_audit\":{{\"certified\":{},\"rejected\":{}}},\
             \"plan_cache\":{{\"hits\":{},\"misses\":{},\"rejected\":{}}},\
             \"aggregator\":{{\"batches\":{},\"max_batch\":{},\"peak_inbox\":{},\"busy_s\":{},\
             \"utilization\":{},\"energy_pj\":{},\"battery_hours\":{},\
             \"outage_s\":{},\"inbox_overflows\":{},\
             \"admission_rejected\":{},\"quarantine_dropped\":{}}},\
             \"tenants\":[{}],\
             \"nodes\":[{}]}}",
            num(self.duration_s),
            self.total_completed(),
            self.total_lost(),
            self.total_retries(),
            latency_json(&fleet),
            num(self.channel_utilization),
            num(self.channel_bad_s),
            switches.join(","),
            num(self.tier_times.normal_s),
            num(self.tier_times.classify_only_s),
            num(self.tier_times.shed_s),
            self.plan_audit.certified,
            self.plan_audit.rejected,
            self.plan_cache.hits,
            self.plan_cache.misses,
            self.plan_cache.rejected,
            self.aggregator.batches,
            self.aggregator.max_batch,
            self.aggregator.peak_inbox,
            num(self.aggregator.busy_s),
            num(self.aggregator.utilization),
            num(self.aggregator.energy_pj),
            num(self.aggregator.battery_hours),
            num(self.aggregator.outage_s),
            self.aggregator.inbox_overflows,
            self.aggregator.admission_rejected,
            self.aggregator.quarantine_dropped,
            tenants.join(","),
            nodes.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_track_order_statistics_within_the_sketch_bound() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 * 1e-2).collect();
        let s = LatencyStats::from_samples(samples);
        assert_eq!(s.count, 100, "count is exact");
        assert_eq!(s.max_s, 1.0, "max is exact");
        let err = QuantileSketch::REL_ERROR;
        for (got, exact) in [(s.p50_s, 0.50), (s.p95_s, 0.95), (s.p99_s, 0.99)] {
            assert!((got - exact).abs() / exact <= err, "{got} vs exact {exact}");
        }
        assert!((s.mean_s - 0.505).abs() / 0.505 <= err);
        assert!(s.p50_s <= s.p95_s && s.p95_s <= s.p99_s && s.p99_s <= s.max_s);
    }

    #[test]
    fn empty_latency_is_all_zero_with_zero_count() {
        let s = LatencyStats::from_samples(Vec::new());
        assert_eq!(s, LatencyStats::default());
        assert_eq!(s.count, 0);
    }

    #[test]
    fn single_sample_fills_every_percentile() {
        let s = LatencyStats::from_samples(vec![0.25]);
        assert_eq!(s.p50_s, 0.25);
        assert_eq!(s.p99_s, 0.25);
        assert_eq!(s.max_s, 0.25);
    }

    #[test]
    fn nan_samples_do_not_poison_the_statistics() {
        let s = LatencyStats::from_samples(vec![f64::NAN, 3.0, 1.0, f64::NAN, 2.0]);
        assert_eq!(s.count, 3, "NaNs are discarded, not counted");
        assert!((s.p50_s - 2.0).abs() / 2.0 <= QuantileSketch::REL_ERROR);
        assert_eq!(s.max_s, 3.0, "max is exact");
        assert!((s.mean_s - 2.0).abs() / 2.0 <= QuantileSketch::REL_ERROR);
        assert!(s.mean_s.is_finite() && s.p99_s.is_finite());
    }

    #[test]
    fn infinities_are_discarded_too() {
        let s = LatencyStats::from_samples(vec![f64::INFINITY, 5.0, f64::NEG_INFINITY]);
        assert_eq!(s.count, 1);
        assert_eq!(s.max_s, 5.0);
    }

    #[test]
    fn all_non_finite_input_degrades_to_the_empty_stats() {
        let s = LatencyStats::from_samples(vec![f64::NAN, f64::INFINITY]);
        assert_eq!(s, LatencyStats::default());
        assert_eq!(s.count, 0);
    }
}
