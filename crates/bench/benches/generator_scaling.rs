//! Criterion bench for the Automatic XPro Generator's runtime (ablation
//! A5): the paper claims the optimal partition is found "in polynomial
//! time" by reduction to min-cut. This bench measures the s-t min-cut and
//! the full delay-constrained λ-sweep on synthetic cell graphs of growing
//! size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use xpro_core::builder::BuiltGraph;
use xpro_core::cellgraph::{Cell, CellGraph, PortRef};
use xpro_core::config::SystemConfig;
use xpro_core::instance::XProInstance;
use xpro_core::layout::Domain;
use xpro_core::XProGenerator;
use xpro_hw::ModuleKind;
use xpro_signal::stats::FeatureKind;

/// Builds a synthetic instance with `bases` SVM cells over `features`
/// feature cells (round-robin wiring), mimicking trained topologies of
/// different ensemble sizes.
fn synthetic_instance(features: usize, bases: usize) -> XProInstance {
    let mut graph = CellGraph::new(128);
    let mut feature_cells = BTreeMap::new();
    for i in 0..features {
        let kind = FeatureKind::ALL[i % 8];
        let id = graph.add_cell(Cell {
            module: ModuleKind::Feature {
                kind,
                input_len: 128,
                reuses_var: false,
            },
            domain: Domain::Time,
            output_samples: vec![1],
            inputs: vec![PortRef::RAW],
            label: format!("{kind}-{i}"),
        });
        feature_cells.insert(i, id);
    }
    let mut svm_cells = Vec::new();
    for b in 0..bases {
        let inputs: Vec<PortRef> = (0..12)
            .map(|k| PortRef::cell(feature_cells[&((b * 7 + k * 3) % features)]))
            .collect();
        svm_cells.push(graph.add_cell(Cell {
            module: ModuleKind::Svm {
                support_vectors: 40,
                dims: 12,
                rbf: true,
            },
            domain: Domain::Time,
            output_samples: vec![1],
            inputs,
            label: format!("svm-{b}"),
        }));
    }
    let fusion_cell = graph.add_cell(Cell {
        module: ModuleKind::ScoreFusion { bases },
        domain: Domain::Time,
        output_samples: vec![1],
        inputs: svm_cells.iter().map(|&c| PortRef::cell(c)).collect(),
        label: "fusion".into(),
    });
    let built = BuiltGraph {
        graph,
        feature_cells,
        svm_cells,
        fusion_cell,
    };
    XProInstance::try_new(built, SystemConfig::default(), 128).expect("valid instance")
}

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator_scaling");
    for &(features, bases) in &[(16usize, 4usize), (32, 8), (56, 16), (56, 32)] {
        let instance = synthetic_instance(features, bases);
        let cells = instance.num_cells();
        group.bench_with_input(BenchmarkId::new("min_cut", cells), &instance, |b, inst| {
            let generator = XProGenerator::new(inst);
            b.iter(|| generator.unconstrained_cut());
        });
        group.bench_with_input(
            BenchmarkId::new("delay_constrained_sweep", cells),
            &instance,
            |b, inst| {
                let generator = XProGenerator::new(inst);
                b.iter(|| generator.generate().expect("partition"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generator);
criterion_main!(benches);
