//! Steady-state rate-aware runtime estimation (Peukert-style usable
//! capacity plus self-discharge).

/// A rate-aware Li-Ion battery runtime model.
#[derive(Clone, Debug, PartialEq)]
pub struct BatteryModel {
    capacity_mah: f64,
    voltage_v: f64,
    /// Peukert-style rate exponent (1.0 = ideal; Li-ion ≈ 1.03–1.08).
    peukert: f64,
    /// Rated (1C-equivalent reference) discharge current in mA.
    rated_current_ma: f64,
    /// Self-discharge fraction per hour (~3 %/month for Li-ion polymer).
    self_discharge_per_hour: f64,
}

impl BatteryModel {
    /// Creates a battery model.
    ///
    /// # Panics
    ///
    /// Panics if capacity, voltage or rated current are non-positive, if
    /// `peukert < 1.0`, or if the self-discharge rate is negative.
    pub fn new(
        capacity_mah: f64,
        voltage_v: f64,
        peukert: f64,
        rated_current_ma: f64,
        self_discharge_per_hour: f64,
    ) -> Self {
        assert!(capacity_mah > 0.0, "capacity must be positive");
        assert!(voltage_v > 0.0, "voltage must be positive");
        assert!(peukert >= 1.0, "peukert exponent must be >= 1");
        assert!(rated_current_ma > 0.0, "rated current must be positive");
        assert!(
            self_discharge_per_hour >= 0.0,
            "self-discharge must be non-negative"
        );
        BatteryModel {
            capacity_mah,
            voltage_v,
            peukert,
            rated_current_ma,
            self_discharge_per_hour,
        }
    }

    /// The 40 mAh / 3 V wearable sensor battery the paper's §1 references
    /// (standard in ECG pulse wristbands).
    pub fn sensor_40mah() -> Self {
        // Rated at 1C (40 mA); mild Li-ion Peukert; ~3 %/month self-discharge.
        BatteryModel::new(40.0, 3.0, 1.05, 40.0, 0.03 / (30.0 * 24.0))
    }

    /// The 2900 mAh / 3.5 V aggregator battery of §5.6 ("iPhone 7").
    pub fn aggregator_2900mah() -> Self {
        BatteryModel::new(2900.0, 3.5, 1.05, 2900.0, 0.03 / (30.0 * 24.0))
    }

    /// Nominal capacity in mAh.
    pub fn capacity_mah(&self) -> f64 {
        self.capacity_mah
    }

    /// Nominal voltage in volts.
    pub fn voltage_v(&self) -> f64 {
        self.voltage_v
    }

    /// Total stored energy in joules at nominal voltage.
    pub fn energy_j(&self) -> f64 {
        self.capacity_mah / 1000.0 * 3600.0 * self.voltage_v
    }

    /// Usable capacity (mAh) at a given average discharge current (mA),
    /// applying the rate-capacity effect. Currents at or below 1 % of rated
    /// are treated as ideal (the effect vanishes at trickle rates).
    pub fn usable_capacity_mah(&self, current_ma: f64) -> f64 {
        assert!(current_ma >= 0.0, "current must be non-negative");
        let ratio = current_ma / self.rated_current_ma;
        if ratio <= 0.01 {
            return self.capacity_mah;
        }
        // Peukert: C_eff = C · (I_rated / I)^(p-1), capped at nominal.
        (self.capacity_mah * ratio.powf(1.0 - self.peukert)).min(self.capacity_mah)
    }

    /// Battery runtime in hours under a constant average power draw (watts).
    ///
    /// Self-discharge is modelled as an additional equivalent current, so
    /// runtime stays finite even for a zero load.
    ///
    /// # Panics
    ///
    /// Panics if `avg_power_w` is negative.
    pub fn runtime_hours(&self, avg_power_w: f64) -> f64 {
        assert!(avg_power_w >= 0.0, "power must be non-negative");
        let load_ma = avg_power_w / self.voltage_v * 1000.0;
        let sd_ma = self.capacity_mah * self.self_discharge_per_hour;
        let total_ma = load_ma + sd_ma;
        if total_ma <= 0.0 {
            return f64::INFINITY;
        }
        self.usable_capacity_mah(load_ma) / total_ma
    }

    /// Battery lifetime in hours for an event-driven load: `energy_pj` per
    /// event at `events_per_second` events.
    ///
    /// # Panics
    ///
    /// Panics if either argument is negative.
    pub fn lifetime_hours(&self, energy_pj: f64, events_per_second: f64) -> f64 {
        assert!(energy_pj >= 0.0, "energy must be non-negative");
        assert!(events_per_second >= 0.0, "event rate must be non-negative");
        let avg_power_w = energy_pj * 1e-12 * events_per_second;
        self.runtime_hours(avg_power_w)
    }

    /// Sound lifetime *floor* for a static worst-case per-event energy
    /// bound: the runtime at the worst-case average power.
    ///
    /// `runtime_hours` is monotonically non-increasing in power — usable
    /// capacity shrinks with load (Peukert) while the discharge current
    /// grows — so evaluating it at an energy *upper* bound can only
    /// under-estimate the true lifetime. Static analyzers use this to turn
    /// a worst-case energy bound into a guaranteed-lifetime claim.
    ///
    /// # Panics
    ///
    /// Panics if either argument is negative.
    pub fn lifetime_floor_hours(&self, worst_energy_pj: f64, events_per_second: f64) -> f64 {
        self.lifetime_hours(worst_energy_pj, events_per_second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_batteries_match_paper() {
        let s = BatteryModel::sensor_40mah();
        assert_eq!(s.capacity_mah(), 40.0);
        assert_eq!(s.voltage_v(), 3.0);
        let a = BatteryModel::aggregator_2900mah();
        assert_eq!(a.capacity_mah(), 2900.0);
    }

    #[test]
    fn energy_in_joules() {
        let s = BatteryModel::sensor_40mah();
        assert!((s.energy_j() - 432.0).abs() < 1e-9); // 0.04 Ah · 3600 · 3 V
    }

    #[test]
    fn runtime_is_inverse_in_power() {
        let s = BatteryModel::sensor_40mah();
        let t1 = s.runtime_hours(1e-3);
        let t2 = s.runtime_hours(2e-3);
        // Not exactly 2× because of Peukert + self-discharge, but close.
        assert!((t1 / t2 - 2.0).abs() < 0.2, "ratio {}", t1 / t2);
        assert!(t1 > t2);
    }

    #[test]
    fn high_rate_discharge_loses_capacity() {
        let s = BatteryModel::sensor_40mah();
        assert_eq!(s.usable_capacity_mah(0.0), 40.0);
        assert!(s.usable_capacity_mah(40.0) <= 40.0);
        assert!(s.usable_capacity_mah(80.0) < s.usable_capacity_mah(40.0));
    }

    #[test]
    fn self_discharge_bounds_idle_runtime() {
        let s = BatteryModel::sensor_40mah();
        let idle = s.runtime_hours(0.0);
        // ~1/(3 %/month) ≈ 24k hours; finite.
        assert!(idle.is_finite());
        assert!((10_000.0..50_000.0).contains(&idle), "idle {idle}");
    }

    #[test]
    fn generic_classification_drains_in_hours() {
        // §1: a generic classification implementation (~20 mW MCU draw)
        // drains a 40 mAh battery in less than 6 hours.
        let s = BatteryModel::sensor_40mah();
        let t = s.runtime_hours(20e-3);
        assert!(t < 6.5, "runtime {t} h");
        assert!(t > 3.0, "runtime {t} h");
    }

    #[test]
    fn event_driven_lifetime_matches_runtime() {
        let s = BatteryModel::sensor_40mah();
        // 5 µJ per event at 2 events/s = 10 µW.
        let a = s.lifetime_hours(5e6, 2.0);
        let b = s.runtime_hours(10e-6);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn runtime_is_monotone_in_power_so_the_floor_is_sound() {
        // The soundness of `lifetime_floor_hours` rests on runtime being
        // non-increasing in power; sweep a wide load range to check it.
        let s = BatteryModel::sensor_40mah();
        let mut prev = s.runtime_hours(0.0);
        for i in 1..=200 {
            let p = f64::from(i) * 2e-3; // up to 400 mW
            let t = s.runtime_hours(p);
            assert!(t <= prev + 1e-12, "runtime rose: {prev} -> {t} at {p} W");
            prev = t;
        }
        // And the floor is exactly the worst-case-power lifetime.
        let floor = s.lifetime_floor_hours(5e6, 2.0);
        assert!((floor - s.lifetime_hours(5e6, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_load_without_self_discharge_is_infinite() {
        let b = BatteryModel::new(10.0, 3.0, 1.0, 10.0, 0.0);
        assert!(b.runtime_hours(0.0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        BatteryModel::new(0.0, 3.0, 1.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_power() {
        BatteryModel::sensor_40mah().runtime_hours(-1.0);
    }
}
