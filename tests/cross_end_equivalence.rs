//! Functional-equivalence integration tests: partitioning changes *where*
//! cells run, never *what* the system computes. The partitioned execution
//! path (cell graph, Std→Var reuse edges, per-base feature wiring) must
//! reproduce the monolithic classifier bit-for-bit on every engine design.

use xpro::core::config::SystemConfig;
use xpro::core::generator::{Engine, XProGenerator};
use xpro::core::instance::XProInstance;
use xpro::core::pipeline::{PipelineConfig, XProPipeline};
use xpro::data::{generate_case_sized, CaseId};
use xpro::ml::SubspaceConfig;

fn trained(case: CaseId, seed: u64) -> XProPipeline {
    let data = generate_case_sized(case, 90, seed);
    let cfg = PipelineConfig::builder()
        .subspace(SubspaceConfig {
            candidates: 10,
            keep_fraction: 0.3,
            min_keep: 3,
            folds: 2,
            ..SubspaceConfig::default()
        })
        .seed(seed)
        .build()
        .expect("valid config");
    XProPipeline::train(&data, &cfg).expect("pipeline trains")
}

#[test]
fn every_engine_partition_is_functionally_equivalent() {
    for case in [CaseId::C1, CaseId::E2, CaseId::M2] {
        let pipeline = trained(case, 3);
        let instance = XProInstance::try_new(
            pipeline.built().clone(),
            SystemConfig::default(),
            pipeline.segment_len(),
        )
        .expect("valid instance");
        let generator = XProGenerator::new(&instance);
        let data = generate_case_sized(case, 40, 77);
        for engine in Engine::ALL {
            let partition = generator.partition_for(engine).expect("partition");
            for segment in &data.segments {
                assert_eq!(
                    pipeline.classify_partitioned(segment, &partition),
                    pipeline.classify(segment),
                    "{case}/{engine}: divergent classification"
                );
            }
        }
    }
}

#[test]
fn classification_is_deterministic_across_runs() {
    let a = trained(CaseId::E1, 9);
    let b = trained(CaseId::E1, 9);
    let data = generate_case_sized(CaseId::E1, 20, 123);
    for segment in &data.segments {
        assert_eq!(a.classify(segment), b.classify(segment));
    }
}

#[test]
fn labels_are_plus_minus_one() {
    let pipeline = trained(CaseId::M1, 4);
    let data = generate_case_sized(CaseId::M1, 20, 55);
    for segment in &data.segments {
        let label = pipeline.classify(segment);
        assert!(label == 1.0 || label == -1.0, "label {label}");
    }
}
