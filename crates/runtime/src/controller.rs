//! The adaptive cross-end partition controller.
//!
//! The static generator picks a partition assuming the radio's nominal
//! per-bit prices. A deployed channel drifts: bursts, interference and
//! contention inflate the attempts actually paid per planned frame. The
//! controller closes the loop:
//!
//! 1. every terminal frame outcome feeds a sliding-window
//!    [`EffectiveEnergyEstimator`] (attempts per planned frame);
//! 2. when the estimated inflation factor leaves the hysteresis band
//!    around the factor the current plan was chosen under — and a minimum
//!    dwell has passed — the controller re-enters the generator through
//!    the certificate-guarded plan cache ([`xpro_core::PlanCache`]) with
//!    the radio derated by the observed factor, against the *baseline*
//!    delay limit of the pristine instance; repeated decisions at the
//!    same effective configuration reuse the memoized cut (after it
//!    re-passes certificate verification) instead of re-running the
//!    λ-sweep;
//! 3. before committing, every feasible re-plan is re-verified at the
//!    commit point through [`xpro_core::verify_plan`]: the max-flow/min-cut
//!    witness attached by the generator is checked edge by edge and the
//!    delay bound is re-derived independently of the planner's evaluator.
//!    Certified plans are applied at the next segment boundary (tier
//!    [`Tier::Normal`]) and counted in [`PlanAudit::certified`]; a plan
//!    whose certificate fails is *not* trusted — it is counted in
//!    [`PlanAudit::rejected`] and treated exactly like an infeasible
//!    re-plan;
//! 4. if no certified cut meets the
//!    baseline limit the fleet degrades to classification-only
//!    transmission ([`Tier::ClassifyOnly`]: every cell on the sensor, only
//!    the one-sample result frame crosses), and when even that cannot fit
//!    the deadline it additionally sheds every other segment
//!    ([`Tier::Shed`]);
//! 5. recovery is symmetric: when the factor falls back out of the band a
//!    feasible (and certified) re-plan returns the fleet to
//!    [`Tier::Normal`].
//!
//! Every decision is logged as a [`PartitionSwitch`] and the time spent
//! per tier is accumulated into [`TierTimes`]; both surface in the
//! [`crate::RunReport`].

use crate::config::RuntimeConfig;
use xpro_core::generator::XProGenerator;
use xpro_core::instance::XProInstance;
use xpro_core::layout::BITS_PER_SAMPLE;
use xpro_core::partition::Partition;
use xpro_core::{verify_plan, PlanCache, PlanCacheStats};
use xpro_wireless::{EffectiveEnergyEstimator, Frame, TransferSample};

/// Degradation tier the fleet is operating in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// A generator cut meets the baseline delay limit.
    Normal,
    /// No feasible cut: everything runs on the sensor and only the
    /// one-sample classification result crosses the channel.
    ClassifyOnly,
    /// Even the result frame cannot reliably meet the deadline: on top of
    /// classification-only transmission, only every k-th segment is
    /// attempted at all.
    Shed,
}

impl Tier {
    /// Stable lower-case name used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Normal => "normal",
            Tier::ClassifyOnly => "classify_only",
            Tier::Shed => "shed",
        }
    }
}

/// One applied controller decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionSwitch {
    /// Virtual time the new plan took effect.
    pub time_s: f64,
    /// Tier entered.
    pub tier: Tier,
    /// Cells mapped to the sensor end under the new partition.
    pub sensor_cells: usize,
    /// Attempt-inflation factor the decision was based on.
    pub factor: f64,
}

/// Outcome counts of the controller's plan-certification gate.
///
/// Every feasible re-plan the generator proposes mid-run carries a
/// max-flow/min-cut certificate; the controller re-checks it (and
/// independently re-derives the delay bound) before committing the cut.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanAudit {
    /// Epoch plans whose cut certificate and delay bound verified.
    pub certified: u64,
    /// Epoch plans refused because certificate checking or independent
    /// delay re-derivation failed; the fleet degraded instead of trusting
    /// the cut.
    pub rejected: u64,
}

/// Time the run spent in each degradation tier.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TierTimes {
    /// Seconds under a feasible generator cut.
    pub normal_s: f64,
    /// Seconds in classification-only transmission.
    pub classify_only_s: f64,
    /// Seconds shedding segments.
    pub shed_s: f64,
}

impl TierTimes {
    pub(crate) fn add(&mut self, tier: Tier, dt_s: f64) {
        let dt = dt_s.max(0.0);
        match tier {
            Tier::Normal => self.normal_s += dt,
            Tier::ClassifyOnly => self.classify_only_s += dt,
            Tier::Shed => self.shed_s += dt,
        }
    }
}

/// The runtime half of the adaptive loop (the planning half lives in
/// [`xpro_core::replan`]).
#[derive(Clone, Debug)]
pub(crate) struct Controller {
    estimator: EffectiveEnergyEstimator,
    hysteresis: f64,
    min_dwell_s: f64,
    /// Frame observations required before the first decision.
    min_evidence: usize,
    /// The delay bound the deployment promised, from the pristine
    /// instance; re-plans are judged against it, never recomputed.
    baseline_limit_s: f64,
    /// The classification-only fallback partition (all-sensor when
    /// numerically valid, otherwise the trivial feature cut).
    fallback: Partition,
    /// Airtime of the fallback's largest cross-end frame; `factor` times
    /// this must fit the deadline or the controller sheds.
    fallback_airtime_s: f64,
    timeout_s: f64,
    /// Inflation factor the active plan was chosen under.
    planned_factor: f64,
    tier: Tier,
    current: Partition,
    last_decision_s: f64,
    tier_entered_s: f64,
    times: TierTimes,
    audit: PlanAudit,
    switches: Vec<PartitionSwitch>,
    /// In [`Tier::Shed`], one segment in `shed_keep_every` is attempted.
    shed_keep_every: u64,
    /// Certificate-guarded memoization of the generator: repeated
    /// decisions at the same effective configuration (instance × derated
    /// radio × baseline limit) reuse the memoized cut after it re-passes
    /// certificate verification, instead of re-running the λ-sweep.
    cache: PlanCache,
}

impl Controller {
    pub fn new(instance: &XProInstance, initial: &Partition, cfg: &RuntimeConfig) -> Self {
        let generator = XProGenerator::new(instance);
        let n = instance.num_cells();
        let all_sensor = Partition::all_sensor(n);
        let fallback = if generator.numerically_valid(&all_sensor) {
            all_sensor
        } else {
            generator.trivial_cut()
        };
        let radio = &instance.config().radio;
        let fallback_airtime_s = fallback_frames(instance, &fallback)
            .into_iter()
            .map(|samples| radio.frame_airtime_s(Frame::for_samples(samples, BITS_PER_SAMPLE)))
            .fold(0.0f64, f64::max);
        Controller {
            estimator: EffectiveEnergyEstimator::new(cfg.adaptive_window),
            hysteresis: cfg.hysteresis,
            min_dwell_s: cfg.min_dwell_s,
            min_evidence: (cfg.adaptive_window / 2).max(1),
            baseline_limit_s: generator.default_delay_limit(),
            fallback,
            fallback_airtime_s,
            timeout_s: cfg.timeout_s,
            planned_factor: 1.0,
            tier: Tier::Normal,
            current: initial.clone(),
            // The first decision is evidence-gated, never dwell-gated.
            last_decision_s: -cfg.min_dwell_s,
            tier_entered_s: 0.0,
            times: TierTimes::default(),
            audit: PlanAudit::default(),
            switches: Vec::new(),
            shed_keep_every: 2,
            cache: PlanCache::new(8),
        }
    }

    /// Feeds one terminal frame outcome (delivered, retries exhausted, or
    /// deadline-abandoned) into the estimator.
    pub fn observe(&mut self, attempts: u64) {
        self.estimator.record(TransferSample {
            planned_frames: 1,
            attempts,
        });
    }

    /// Whether a segment with this per-node sequence number is shed under
    /// the current tier. The engine applies the tier through
    /// [`Controller::shed_every`] broadcasts; this predicate remains the
    /// executable specification of the shed rule.
    #[cfg(test)]
    pub fn sheds(&self, segment_seq: u64) -> bool {
        self.tier == Tier::Shed && !segment_seq.is_multiple_of(self.shed_keep_every)
    }

    /// Shed modulus in effect: `Some(k)` when the fleet is in
    /// [`Tier::Shed`] (one segment in `k` is attempted, judged against the
    /// per-node sequence number as in [`Controller::sheds`]), `None`
    /// otherwise. The sharded executor broadcasts this to every shard at
    /// each barrier so shards apply the tier without consulting the
    /// controller mid-round.
    pub fn shed_every(&self) -> Option<u64> {
        (self.tier == Tier::Shed).then_some(self.shed_keep_every)
    }

    /// The active degradation tier.
    #[cfg(test)]
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Called at a segment boundary: decides whether the partition should
    /// change. Returns the new partition when a switch is due.
    pub fn maybe_replan(&mut self, now_s: f64, instance: &XProInstance) -> Option<Partition> {
        if self.estimator.len() < self.min_evidence
            || now_s - self.last_decision_s < self.min_dwell_s
        {
            return None;
        }
        let factor = self.estimator.factor();
        if factor >= self.planned_factor / self.hysteresis
            && factor <= self.planned_factor * self.hysteresis
        {
            return None;
        }
        // Any decision — even one that re-confirms the current plan —
        // re-baselines the band and restarts the dwell, so the min-cut
        // sweep runs at most once per dwell.
        self.last_decision_s = now_s;
        self.planned_factor = factor;
        let radio = instance.config().radio.derated(factor);
        // A feasible re-plan is only trusted once its min-cut certificate
        // checks out against an independently rebuilt network and the delay
        // bound re-derives under the limit; a plan that fails the gate is
        // treated exactly like an infeasible one.
        let certified_cut = match self.cache.replan(instance, radio, self.baseline_limit_s) {
            Ok((repriced, cut, cert)) => {
                match verify_plan(&repriced, &cut, cert.as_ref(), self.baseline_limit_s) {
                    Ok(()) => {
                        self.audit.certified += 1;
                        Some(cut)
                    }
                    Err(_) => {
                        self.audit.rejected += 1;
                        None
                    }
                }
            }
            Err(_) => None,
        };
        let (tier, partition) = match certified_cut {
            Some(cut) => (Tier::Normal, cut),
            None => {
                // No certified cut meets the promised bound. Fall back to
                // classification-only transmission unless even its frames,
                // inflated by the observed factor, blow the deadline —
                // then additionally shed segments.
                if factor * self.fallback_airtime_s <= self.timeout_s {
                    (Tier::ClassifyOnly, self.fallback.clone())
                } else {
                    (Tier::Shed, self.fallback.clone())
                }
            }
        };
        if tier == self.tier && partition == self.current {
            return None;
        }
        self.times.add(self.tier, now_s - self.tier_entered_s);
        self.tier_entered_s = now_s;
        self.tier = tier;
        self.current = partition.clone();
        self.switches.push(PartitionSwitch {
            time_s: now_s,
            tier,
            sensor_cells: partition.in_sensor.iter().filter(|b| **b).count(),
            factor,
        });
        Some(partition)
    }

    /// Closes the books at the end of the run.
    pub fn finish(
        mut self,
        duration_s: f64,
    ) -> (Vec<PartitionSwitch>, TierTimes, PlanAudit, PlanCacheStats) {
        let dt = duration_s - self.tier_entered_s;
        self.times.add(self.tier, dt);
        (self.switches, self.times, self.audit, self.cache.stats())
    }
}

/// Sample counts of the cross-end frames of `partition` (the grouped-cells
/// rule, same walk as the executor's segment plan).
fn fallback_frames(instance: &XProInstance, partition: &Partition) -> Vec<u64> {
    let graph = &instance.built().graph;
    let mut frames = Vec::new();
    for port in graph.active_ports() {
        let producer_sensor = match port.producer {
            None => true,
            Some(c) => partition.in_sensor[c],
        };
        let any_cross = graph
            .consumers_of(port)
            .iter()
            .any(|&c| partition.in_sensor[c] != producer_sensor);
        if any_cross {
            frames.push(match port.producer {
                None => instance.segment_len() as u64,
                Some(_) => graph.port_samples(port),
            });
        }
    }
    if partition.in_sensor[graph.result_cell()] {
        frames.push(1);
    }
    frames
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;
    use crate::testutil::tiny_instance;
    use xpro_core::generator::Engine;

    fn controller(cfg: &RuntimeConfig) -> (XProInstance, Partition, Controller) {
        let inst = tiny_instance(0);
        let cut = XProGenerator::new(&inst)
            .partition_for(Engine::CrossEnd)
            .unwrap();
        let ctl = Controller::new(&inst, &cut, cfg);
        (inst, cut, ctl)
    }

    fn cfg() -> RuntimeConfig {
        RuntimeConfig::builder()
            .adaptive(true)
            .adaptive_window(8)
            .hysteresis(1.5)
            .min_dwell_s(0.1)
            .build()
            .unwrap()
    }

    #[test]
    fn no_decision_without_evidence() {
        let (inst, _, mut ctl) = controller(&cfg());
        assert!(ctl.maybe_replan(10.0, &inst).is_none());
        assert_eq!(ctl.tier(), Tier::Normal);
    }

    #[test]
    fn healthy_channel_never_switches() {
        let (inst, _, mut ctl) = controller(&cfg());
        for _ in 0..20 {
            ctl.observe(1);
        }
        assert!(ctl.maybe_replan(10.0, &inst).is_none());
        let (switches, times, audit, cache) = ctl.finish(20.0);
        assert_eq!(cache, PlanCacheStats::default(), "no decisions, no lookups");
        assert!(switches.is_empty());
        assert_eq!(times.normal_s, 20.0);
        assert_eq!(times.classify_only_s + times.shed_s, 0.0);
        assert_eq!(audit, PlanAudit::default(), "no decisions, nothing audited");
    }

    #[test]
    fn severe_inflation_degrades_and_recovery_restores() {
        let (inst, initial, mut ctl) = controller(&cfg());
        // ~40x attempt inflation: no cut can meet the baseline limit.
        for _ in 0..8 {
            ctl.observe(40);
        }
        let degraded = ctl.maybe_replan(1.0, &inst).expect("must switch");
        assert_ne!(ctl.tier(), Tier::Normal);
        assert!(
            degraded.in_sensor.iter().filter(|b| **b).count()
                >= initial.in_sensor.iter().filter(|b| **b).count(),
            "degradation must move work toward the sensor"
        );
        // Channel recovers: window refills with clean transfers.
        for _ in 0..8 {
            ctl.observe(1);
        }
        let restored = ctl.maybe_replan(2.0, &inst).expect("must recover");
        assert_eq!(ctl.tier(), Tier::Normal);
        assert_eq!(restored, initial, "recovery returns the static cut");
        let (switches, times, audit, cache) = ctl.finish(3.0);
        assert_eq!(
            cache.hits + cache.misses,
            2,
            "every decision consults the plan cache exactly once"
        );
        assert!(
            audit.certified >= 1,
            "the recovery re-plan must pass the certificate gate: {audit:?}"
        );
        assert_eq!(audit.rejected, 0, "honest generator cuts never fail");
        assert_eq!(switches.len(), 2);
        assert_ne!(switches[0].tier, Tier::Normal);
        assert_eq!(switches[1].tier, Tier::Normal);
        assert!(switches[0].factor > switches[1].factor);
        assert!(times.normal_s > 0.0);
        assert!(times.classify_only_s + times.shed_s > 0.0);
        assert!(
            (times.normal_s + times.classify_only_s + times.shed_s - 3.0).abs() < 1e-9,
            "tier times must partition the run"
        );
    }

    #[test]
    fn dwell_and_hysteresis_gate_decisions() {
        let mut c = cfg();
        c.min_dwell_s = 5.0;
        let (inst, _, mut ctl) = controller(&c);
        for _ in 0..8 {
            ctl.observe(40);
        }
        assert!(ctl.maybe_replan(1.0, &inst).is_some());
        for _ in 0..8 {
            ctl.observe(1);
        }
        // Inside the dwell window: no decision despite the recovered band.
        assert!(ctl.maybe_replan(2.0, &inst).is_none());
        assert!(ctl.maybe_replan(7.0, &inst).is_some());
    }

    #[test]
    fn mild_drift_inside_the_band_is_ignored() {
        let (inst, _, mut ctl) = controller(&cfg());
        // factor ≈ 1.25 < hysteresis 1.5: stay put.
        for _ in 0..8 {
            ctl.observe(5);
        }
        for _ in 0..24 {
            ctl.observe(1);
        }
        assert!((ctl.estimator.factor() - 1.5).abs() < 0.6);
        if ctl.estimator.factor() <= 1.5 {
            assert!(ctl.maybe_replan(1.0, &inst).is_none());
        }
    }

    #[test]
    fn impossible_deadline_sheds_segments() {
        let mut c = cfg();
        c.timeout_s = 1e-7; // nothing fits: even the result frame is late
        let (inst, _, mut ctl) = controller(&c);
        for _ in 0..8 {
            ctl.observe(40);
        }
        ctl.maybe_replan(1.0, &inst).expect("must switch");
        assert_eq!(ctl.tier(), Tier::Shed);
        assert!(ctl.sheds(1));
        assert!(!ctl.sheds(0), "every k-th segment still flows");
    }

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(Tier::Normal.as_str(), "normal");
        assert_eq!(Tier::ClassifyOnly.as_str(), "classify_only");
        assert_eq!(Tier::Shed.as_str(), "shed");
    }
}
