//! Case execution: configuration, RNG and case outcomes.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Config {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Outcome of a single generated case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; skip the case.
    Reject,
    /// `prop_assert!` failed with a message.
    Fail(String),
}

/// The deterministic case generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator seeded from the test name, so every property is
    /// deterministic and independent of execution order.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over an empty domain");
        (self.next_u64() % n as u64) as usize
    }
}
