//! Independent certification of generated cuts and epoch plans.
//!
//! The Automatic XPro Generator reduces partitioning to an s-t min-cut and
//! trusts the Dinic solver's answer. This module removes that trust: every
//! cut can carry a [`CutCertificate`] — the max-flow witness extracted from
//! the solver — and [`check_cut_certificate`] re-verifies it from first
//! principles against an *independently rebuilt* network:
//!
//! 1. the witness's edge list matches the re-derived network topology and
//!    capacities edge by edge;
//! 2. the flow is feasible: `0 ≤ flow ≤ capacity` on every edge;
//! 3. flow is conserved at every node except the source and sink;
//! 4. the claimed partition is exactly the node sides of the witness;
//! 5. no infinite edge crosses the cut, every crossing edge is saturated,
//!    and the flow value equals the cut weight.
//!
//! The last check is the punchline: by LP weak duality any feasible flow
//! value lower-bounds any s-t cut weight, so *equality* proves both optimal
//! simultaneously — a mutated cut either violates an invariant outright or
//! is no longer minimum and fails the equality.
//!
//! [`verify_plan`] layers the deployment-level checks on top: the
//! statically derived end-to-end delay ([`derive_delay_s`], backed by the
//! shared [`crate::profile::segment_profile`] walk) against the promised
//! limit, and the numeric validation that no overflow-prone cell sits on
//! the fixed-point sensor. The runtime's adaptive controller runs this on
//! every epoch plan before committing it.

use crate::instance::XProInstance;
use crate::partition::Partition;
use crate::profile::segment_profile;
use crate::stgraph::build_network;
use xpro_graph::dinic::{CutWitness, NodeId};

/// Relative tolerance for capacity, conservation, and weight comparisons.
const TOL_REL: f64 = 1e-6;

/// A max-flow/min-cut witness for one generated partition, with the
/// bookkeeping needed to re-derive the network it certifies.
#[derive(Clone, Debug)]
pub struct CutCertificate {
    /// The solver's flow witness over the λ-priced s-t network.
    pub witness: CutWitness,
    /// Node id of the source `F`.
    pub source: NodeId,
    /// Node id of the sink `B`.
    pub sink: NodeId,
    /// `cell_node[c]` is the network node of functional cell `c`.
    pub cell_node: Vec<NodeId>,
    /// The Lagrangian delay price the network was built under.
    pub lambda_pj_per_s: f64,
}

/// The invariant a certificate (or plan) check found violated.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CertificateViolation {
    /// The certificate's shape disagrees with the instance (cell count,
    /// node count, source/sink ids, or edge count).
    StructureMismatch {
        /// What disagreed.
        detail: String,
    },
    /// A witness edge's endpoints or capacity disagree with the
    /// independently rebuilt network.
    EdgeMismatch {
        /// Index of the offending edge in insertion order.
        index: usize,
    },
    /// An edge carries negative (or non-finite) flow.
    NegativeFlow {
        /// Tail node.
        from: NodeId,
        /// Head node.
        to: NodeId,
        /// The offending flow value.
        flow: f64,
    },
    /// An edge's flow exceeds its capacity.
    CapacityExceeded {
        /// Tail node.
        from: NodeId,
        /// Head node.
        to: NodeId,
        /// The offending flow value.
        flow: f64,
        /// The edge's capacity.
        capacity: f64,
    },
    /// Flow is not conserved at an interior node.
    Unconserved {
        /// The unbalanced node.
        node: NodeId,
        /// Inflow minus outflow.
        imbalance: f64,
    },
    /// The source is not on the source side, or the sink is.
    SideMismatch,
    /// An infinite-capacity edge crosses the claimed cut — the cut weight
    /// would be unbounded, so it cannot be minimum.
    InfiniteCutEdge {
        /// Tail node.
        from: NodeId,
        /// Head node.
        to: NodeId,
    },
    /// A cut edge is not saturated by the flow.
    UnsaturatedCutEdge {
        /// Tail node.
        from: NodeId,
        /// Head node.
        to: NodeId,
        /// Flow on the edge.
        flow: f64,
        /// Capacity of the edge.
        capacity: f64,
    },
    /// The flow value does not equal the cut weight, so weak duality does
    /// not close and optimality is unproven.
    FlowCutMismatch {
        /// The witness's flow value.
        flow: f64,
        /// The claimed cut's weight.
        cut: f64,
    },
    /// The claimed partition disagrees with the witness's node sides.
    PartitionMismatch {
        /// The first disagreeing cell.
        cell: usize,
    },
    /// The statically re-derived delay exceeds the promised limit.
    DelayExceeded {
        /// Re-derived end-to-end delay in seconds.
        total_s: f64,
        /// The promised limit in seconds.
        limit_s: f64,
    },
    /// A cell the range analysis flagged as overflow-prone is mapped to
    /// the fixed-point sensor end.
    NumericallyUnsafe {
        /// The offending cell.
        cell: usize,
    },
}

impl std::fmt::Display for CertificateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use CertificateViolation as V;
        match self {
            V::StructureMismatch { detail } => write!(f, "structure mismatch: {detail}"),
            V::EdgeMismatch { index } => {
                write!(f, "edge {index} disagrees with the rebuilt network")
            }
            V::NegativeFlow { from, to, flow } => {
                write!(f, "negative flow {flow} on edge {from}->{to}")
            }
            V::CapacityExceeded {
                from,
                to,
                flow,
                capacity,
            } => write!(
                f,
                "flow {flow} exceeds capacity {capacity} on edge {from}->{to}"
            ),
            V::Unconserved { node, imbalance } => {
                write!(f, "flow unconserved at node {node} (imbalance {imbalance})")
            }
            V::SideMismatch => write!(f, "source/sink on the wrong side of the cut"),
            V::InfiniteCutEdge { from, to } => {
                write!(f, "infinite-capacity edge {from}->{to} crosses the cut")
            }
            V::UnsaturatedCutEdge {
                from,
                to,
                flow,
                capacity,
            } => write!(
                f,
                "cut edge {from}->{to} unsaturated (flow {flow} < capacity {capacity})"
            ),
            V::FlowCutMismatch { flow, cut } => {
                write!(f, "flow value {flow} != cut weight {cut}")
            }
            V::PartitionMismatch { cell } => {
                write!(f, "partition disagrees with the witness at cell {cell}")
            }
            V::DelayExceeded { total_s, limit_s } => {
                write!(f, "re-derived delay {total_s} s exceeds limit {limit_s} s")
            }
            V::NumericallyUnsafe { cell } => {
                write!(f, "overflow-prone cell {cell} mapped to the sensor end")
            }
        }
    }
}

impl std::error::Error for CertificateViolation {}

/// Re-verifies a cut certificate against an independently rebuilt network.
///
/// # Errors
///
/// The first violated invariant, as a [`CertificateViolation`].
pub fn check_cut_certificate(
    instance: &XProInstance,
    partition: &Partition,
    cert: &CutCertificate,
) -> Result<(), CertificateViolation> {
    let n = instance.num_cells();
    if partition.in_sensor.len() != n || cert.cell_node.len() != n {
        return Err(CertificateViolation::StructureMismatch {
            detail: format!(
                "instance has {n} cells, partition {} and certificate {}",
                partition.in_sensor.len(),
                cert.cell_node.len()
            ),
        });
    }

    // Re-derive the network from the instance and λ; the witness must
    // describe exactly this network.
    let st = build_network(instance, cert.lambda_pj_per_s);
    let reference = st.net.edges();
    let witness = &cert.witness;
    if cert.source != st.source
        || cert.sink != st.sink
        || cert.cell_node != st.cell_node
        || witness.source_side.len() != st.net.len()
    {
        return Err(CertificateViolation::StructureMismatch {
            detail: "node bookkeeping disagrees with the rebuilt network".into(),
        });
    }
    if witness.edges.len() != reference.len() {
        return Err(CertificateViolation::StructureMismatch {
            detail: format!(
                "witness has {} edges, rebuilt network {}",
                witness.edges.len(),
                reference.len()
            ),
        });
    }

    // Tolerances scale with the largest finite capacity (λ-priced weights
    // can be many orders of magnitude above the raw energies).
    let scale = reference
        .iter()
        .map(|&(_, _, c)| c)
        .filter(|c| c.is_finite())
        .fold(1.0f64, f64::max);
    let tol = scale * TOL_REL;

    for (i, (e, &(rf, rt, rc))) in witness.edges.iter().zip(&reference).enumerate() {
        if e.from != rf || e.to != rt {
            return Err(CertificateViolation::EdgeMismatch { index: i });
        }
        let caps_agree = if rc.is_infinite() {
            e.capacity.is_infinite()
        } else {
            e.capacity.is_finite() && (e.capacity - rc).abs() <= tol
        };
        if !caps_agree {
            return Err(CertificateViolation::EdgeMismatch { index: i });
        }
        if !e.flow.is_finite() || e.flow < -tol {
            return Err(CertificateViolation::NegativeFlow {
                from: e.from,
                to: e.to,
                flow: e.flow,
            });
        }
        if e.flow > e.capacity + tol {
            return Err(CertificateViolation::CapacityExceeded {
                from: e.from,
                to: e.to,
                flow: e.flow,
                capacity: e.capacity,
            });
        }
    }

    // Conservation at every interior node.
    let mut balance = vec![0.0f64; st.net.len()];
    for e in &witness.edges {
        balance[e.from] -= e.flow;
        balance[e.to] += e.flow;
    }
    for (node, &imbalance) in balance.iter().enumerate() {
        if node != cert.source && node != cert.sink && imbalance.abs() > tol {
            return Err(CertificateViolation::Unconserved { node, imbalance });
        }
    }

    // Side sanity, then weak duality: flow value == cut weight.
    if !witness.source_side[cert.source] || witness.source_side[cert.sink] {
        return Err(CertificateViolation::SideMismatch);
    }
    let mut cut_weight = 0.0f64;
    for e in &witness.edges {
        if witness.source_side[e.from] && !witness.source_side[e.to] {
            if e.capacity.is_infinite() {
                return Err(CertificateViolation::InfiniteCutEdge {
                    from: e.from,
                    to: e.to,
                });
            }
            if (e.flow - e.capacity).abs() > tol {
                return Err(CertificateViolation::UnsaturatedCutEdge {
                    from: e.from,
                    to: e.to,
                    flow: e.flow,
                    capacity: e.capacity,
                });
            }
            cut_weight += e.capacity;
        }
    }
    // The flow value must match both the witness's claim and the net
    // source outflow (which conservation ties to the sink inflow).
    let source_out = -balance[cert.source];
    if (witness.value - cut_weight).abs() > tol || (source_out - cut_weight).abs() > tol {
        return Err(CertificateViolation::FlowCutMismatch {
            flow: witness.value,
            cut: cut_weight,
        });
    }

    // The claimed partition must be the witness's node sides.
    for (cell, (&on_sensor, &node)) in partition.in_sensor.iter().zip(&cert.cell_node).enumerate() {
        if on_sensor != witness.source_side[node] {
            return Err(CertificateViolation::PartitionMismatch { cell });
        }
    }
    Ok(())
}

/// Statically derives a partition's end-to-end event delay from cell
/// timings and frame air times, via the shared
/// [`crate::profile::segment_profile`] walk.
///
/// This used to be a hand-maintained second copy of the evaluator's
/// delay loop; the copies are now deduplicated into one documented
/// function that `partition::evaluate`, this checker, and the WCRT
/// analyzer's best-case sanity check all call. Independence from the
/// *pricing* code is preserved where it matters — the certificate checks
/// (flow feasibility, weak duality) never consult the evaluator — while
/// the delay number itself is defined in exactly one place.
///
/// # Panics
///
/// Panics if the partition size differs from the instance's cell count.
pub fn derive_delay_s(instance: &XProInstance, partition: &Partition) -> f64 {
    segment_profile(instance, partition).delay_s()
}

/// Full plan verification: the cut certificate (when the plan came from
/// the min-cut solver), numeric validity of every sensor-side cell, and
/// the statically re-derived delay against the promised limit.
///
/// Single-end and trivial-cut plans carry no witness (`cert == None`);
/// they still get the numeric and delay checks.
///
/// # Errors
///
/// The first violated invariant, as a [`CertificateViolation`].
pub fn verify_plan(
    instance: &XProInstance,
    partition: &Partition,
    cert: Option<&CutCertificate>,
    t_limit_s: f64,
) -> Result<(), CertificateViolation> {
    if partition.in_sensor.len() != instance.num_cells() {
        return Err(CertificateViolation::StructureMismatch {
            detail: format!(
                "instance has {} cells, partition {}",
                instance.num_cells(),
                partition.in_sensor.len()
            ),
        });
    }
    if let Some(cert) = cert {
        check_cut_certificate(instance, partition, cert)?;
    }
    for (cell, &on_sensor) in partition.in_sensor.iter().enumerate() {
        if on_sensor && !instance.cell_numerically_safe(cell) {
            return Err(CertificateViolation::NumericallyUnsafe { cell });
        }
    }
    let total_s = derive_delay_s(instance, partition);
    let tol = t_limit_s * 1e-9;
    if total_s > t_limit_s + tol {
        return Err(CertificateViolation::DelayExceeded {
            total_s,
            limit_s: t_limit_s,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;
    use crate::partition::evaluate;
    use crate::stgraph::certified_min_cut_partition;
    use crate::testutil::tiny_instance;

    #[test]
    fn generated_cuts_certify_across_lambdas() {
        for seed in 0..4 {
            let inst = tiny_instance(seed);
            for lambda in [0.0, 1.0e6, 1.0e9, 1.0e12] {
                let (p, cert) = certified_min_cut_partition(&inst, lambda);
                check_cut_certificate(&inst, &p, &cert)
                    .unwrap_or_else(|v| panic!("seed {seed} λ {lambda}: {v}"));
            }
        }
    }

    #[test]
    fn derived_delay_matches_the_evaluator() {
        // Both callers share one profile walk now, but this pins the
        // contract that repackaging (breakdowns vs a scalar) never skews
        // the total.
        let inst = tiny_instance(1);
        let n = inst.num_cells();
        let (cut, _) = certified_min_cut_partition(&inst, 1.0e9);
        for p in [Partition::all_sensor(n), Partition::all_aggregator(n), cut] {
            let evaluated = evaluate(&inst, &p).delay.total_s();
            let derived = derive_delay_s(&inst, &p);
            assert!(
                (evaluated - derived).abs() <= evaluated * 1e-9,
                "evaluate {evaluated} vs derive {derived}"
            );
        }
    }

    #[test]
    fn moved_cell_is_rejected_as_partition_mismatch() {
        let inst = tiny_instance(2);
        let (mut p, cert) = certified_min_cut_partition(&inst, 0.0);
        // Flip one cell to the other end: the witness no longer matches.
        let victim = 0;
        p.in_sensor[victim] = !p.in_sensor[victim];
        let err = check_cut_certificate(&inst, &p, &cert).unwrap_err();
        assert_eq!(
            err,
            CertificateViolation::PartitionMismatch { cell: victim }
        );
    }

    #[test]
    fn inflated_flow_is_rejected() {
        let inst = tiny_instance(3);
        let (p, mut cert) = certified_min_cut_partition(&inst, 0.0);
        // Inflate one finite edge's flow past its capacity.
        let idx = cert
            .witness
            .edges
            .iter()
            .position(|e| e.capacity.is_finite() && e.capacity > 0.0)
            .unwrap();
        cert.witness.edges[idx].flow = cert.witness.edges[idx].capacity * 2.0 + 1.0;
        let err = check_cut_certificate(&inst, &p, &cert).unwrap_err();
        assert!(
            matches!(
                err,
                CertificateViolation::CapacityExceeded { .. }
                    | CertificateViolation::Unconserved { .. }
            ),
            "got {err}"
        );
    }

    #[test]
    fn negative_flow_is_rejected() {
        let inst = tiny_instance(3);
        let (p, mut cert) = certified_min_cut_partition(&inst, 0.0);
        // Negate the largest flow: unambiguously beyond the scale-relative
        // tolerance.
        let idx = (0..cert.witness.edges.len())
            .max_by(|&a, &b| {
                cert.witness.edges[a]
                    .flow
                    .total_cmp(&cert.witness.edges[b].flow)
            })
            .unwrap();
        assert!(cert.witness.edges[idx].flow > 0.0);
        cert.witness.edges[idx].flow = -cert.witness.edges[idx].flow;
        let err = check_cut_certificate(&inst, &p, &cert).unwrap_err();
        assert!(
            matches!(err, CertificateViolation::NegativeFlow { .. }),
            "got {err}"
        );
    }

    #[test]
    fn tampered_capacity_is_rejected_as_edge_mismatch() {
        let inst = tiny_instance(4);
        let (p, mut cert) = certified_min_cut_partition(&inst, 0.0);
        let idx = cert
            .witness
            .edges
            .iter()
            .position(|e| e.capacity.is_finite() && e.capacity > 0.0)
            .unwrap();
        cert.witness.edges[idx].capacity *= 0.5;
        cert.witness.edges[idx].flow = 0.0;
        let err = check_cut_certificate(&inst, &p, &cert).unwrap_err();
        assert!(
            matches!(err, CertificateViolation::EdgeMismatch { .. }),
            "got {err}"
        );
    }

    #[test]
    fn forged_flow_value_fails_weak_duality() {
        let inst = tiny_instance(5);
        let (p, mut cert) = certified_min_cut_partition(&inst, 0.0);
        cert.witness.value *= 0.5;
        let err = check_cut_certificate(&inst, &p, &cert).unwrap_err();
        assert!(
            matches!(err, CertificateViolation::FlowCutMismatch { .. }),
            "got {err}"
        );
    }

    #[test]
    fn wrong_lambda_is_rejected() {
        // A witness priced under one λ cannot certify a network rebuilt
        // under another: the capacities disagree.
        let inst = tiny_instance(6);
        let (p, mut cert) = certified_min_cut_partition(&inst, 0.0);
        cert.lambda_pj_per_s = 1.0e12;
        let err = check_cut_certificate(&inst, &p, &cert).unwrap_err();
        assert!(
            matches!(err, CertificateViolation::EdgeMismatch { .. }),
            "got {err}"
        );
    }

    #[test]
    fn violated_deadline_is_rejected_by_verify_plan() {
        let inst = tiny_instance(7);
        let (p, cert) = certified_min_cut_partition(&inst, 0.0);
        check_cut_certificate(&inst, &p, &cert).unwrap();
        let honest = derive_delay_s(&inst, &p);
        // A limit below the true delay must be caught.
        let err = verify_plan(&inst, &p, Some(&cert), honest * 0.5).unwrap_err();
        assert!(
            matches!(err, CertificateViolation::DelayExceeded { .. }),
            "got {err}"
        );
        // And the honest delay passes.
        verify_plan(&inst, &p, Some(&cert), honest * 1.01).unwrap();
    }

    #[test]
    fn violations_render_their_invariant() {
        let v = CertificateViolation::FlowCutMismatch {
            flow: 1.0,
            cut: 2.0,
        };
        assert!(v.to_string().contains("flow value"));
        let v = CertificateViolation::DelayExceeded {
            total_s: 2.0,
            limit_s: 1.0,
        };
        assert!(v.to_string().contains("exceeds limit"));
    }
}
