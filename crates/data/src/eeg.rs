//! Synthetic electroencephalogram (EEG) generator.
//!
//! Substitute for the neural-spike "EEGDifficult" cases of Table 1 (E1, E2).
//! Segments are mixtures of band-limited oscillations (theta/alpha/beta) over
//! pink-ish background noise; one class additionally carries transient spike
//! discharges, the wavelet-domain signature that makes DWT features valuable
//! for EEG (paper §2.1 cites DWT-based seizure detection).
//!
//! The two "difficult" variants reduce the between-class contrast in
//! different ways: E1 separates classes by band-power shift, E2 by spike
//! density, so the trained ensembles select different feature subsets —
//! which in turn yields different XPro cell topologies per case.

use crate::waveform::{add_white_noise, ar1_filter, gauss, gaussian_bump, sine};
use rand::rngs::StdRng;
use rand::Rng;

/// Parameters of the synthetic EEG generator.
#[derive(Clone, Debug, PartialEq)]
pub struct EegParams {
    /// Amplitude of the theta band (~4–8 Hz equivalent).
    pub theta_amp: f64,
    /// Amplitude of the alpha band (~8–13 Hz equivalent).
    pub alpha_amp: f64,
    /// Amplitude of the beta band (~13–30 Hz equivalent).
    pub beta_amp: f64,
    /// Expected number of spike discharges per 128 samples.
    pub spike_rate: f64,
    /// Spike peak amplitude.
    pub spike_amp: f64,
    /// Background noise standard deviation (pre-filter).
    pub noise_std: f64,
    /// AR(1) pole shaping the background spectrum.
    pub background_pole: f64,
}

impl EegParams {
    /// E1 baseline class: alpha-dominant resting rhythm.
    pub fn e1_rest() -> Self {
        EegParams {
            theta_amp: 0.10,
            alpha_amp: 0.60,
            beta_amp: 0.12,
            spike_rate: 0.0,
            spike_amp: 0.0,
            noise_std: 0.18,
            background_pole: 0.85,
        }
    }

    /// E1 contrast class: theta-shifted rhythm (drowsiness-like).
    pub fn e1_shifted() -> Self {
        EegParams {
            theta_amp: 0.60,
            alpha_amp: 0.10,
            beta_amp: 0.20,
            spike_rate: 0.0,
            spike_amp: 0.0,
            noise_std: 0.18,
            background_pole: 0.85,
        }
    }

    /// E2 baseline class: background activity without discharges.
    pub fn e2_background() -> Self {
        EegParams {
            theta_amp: 0.2,
            alpha_amp: 0.3,
            beta_amp: 0.15,
            spike_rate: 0.0,
            spike_amp: 0.0,
            noise_std: 0.3,
            background_pole: 0.8,
        }
    }

    /// E2 contrast class: same rhythm plus sparse spike discharges.
    pub fn e2_spiking() -> Self {
        EegParams {
            spike_rate: 4.0,
            spike_amp: 1.4,
            ..EegParams::e2_background()
        }
    }
}

/// Generates one EEG segment of `len` samples.
///
/// # Panics
///
/// Panics if `len == 0`.
pub fn generate_eeg(params: &EegParams, len: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(len > 0, "segment length must be positive");
    // Background 1/f-ish noise.
    let mut out = vec![0.0; len];
    for v in &mut out {
        *v = gauss(rng);
    }
    ar1_filter(&mut out, params.background_pole);

    // Band oscillations with random phase and slight frequency wander.
    // Frequencies in cycles/sample, assuming ~128 Hz equivalent sampling.
    let bands = [
        (0.047, params.theta_amp), // ~6 Hz
        (0.08, params.alpha_amp),  // ~10 Hz
        (0.16, params.beta_amp),   // ~20 Hz
    ];
    for (freq, amp) in bands {
        if amp <= 0.0 {
            continue;
        }
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let wander = 1.0 + rng.gen_range(-0.08..0.08);
        for (i, v) in out.iter_mut().enumerate() {
            *v += sine(i, freq * wander, phase, amp);
        }
    }

    // Spike discharges: narrow biphasic transients at random positions.
    let expected = params.spike_rate * len as f64 / 128.0;
    let n_spikes = poisson_draw(expected, rng);
    for _ in 0..n_spikes {
        let center = rng.gen_range(0.0..len as f64);
        let width = rng.gen_range(1.2..2.5);
        let polarity: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        for (i, v) in out.iter_mut().enumerate() {
            let x = i as f64;
            // Sharp positive peak followed by a shallow rebound.
            *v += polarity
                * params.spike_amp
                * (gaussian_bump(x, center, width)
                    - 0.4 * gaussian_bump(x, center + 2.5 * width, 2.0 * width));
        }
    }

    add_white_noise(&mut out, params.noise_std * 0.2, rng);
    out
}

/// Small-mean Poisson sampler (inversion by sequential search).
fn poisson_draw(mean: f64, rng: &mut StdRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let limit = (-mean).exp();
    let mut product: f64 = rng.gen_range(0.0..1.0);
    let mut count = 0usize;
    while product > limit && count < 64 {
        product *= rng.gen_range(0.0f64..1.0);
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xpro_signal::dwt::{dwt_multilevel, Wavelet};
    use xpro_signal::stats::{feature_f64, FeatureKind};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn segment_has_requested_length() {
        assert_eq!(
            generate_eeg(&EegParams::e1_rest(), 128, &mut rng()).len(),
            128
        );
    }

    #[test]
    fn spiking_class_has_higher_kurtosis() {
        let mut r = rng();
        let mut k_bg = 0.0;
        let mut k_sp = 0.0;
        for _ in 0..30 {
            k_bg += feature_f64(
                FeatureKind::Kurt,
                &generate_eeg(&EegParams::e2_background(), 128, &mut r),
            );
            k_sp += feature_f64(
                FeatureKind::Kurt,
                &generate_eeg(&EegParams::e2_spiking(), 128, &mut r),
            );
        }
        assert!(k_sp > k_bg, "spiking kurt {k_sp} <= background {k_bg}");
    }

    #[test]
    fn band_shift_moves_wavelet_energy() {
        // Theta-dominant segments concentrate energy in deeper DWT levels.
        let mut r = rng();
        let deep_energy = |params: &EegParams, r: &mut StdRng| -> f64 {
            let mut acc = 0.0;
            for _ in 0..20 {
                let seg = generate_eeg(params, 128, r);
                let dec = dwt_multilevel(&seg, 5, Wavelet::Haar);
                // Levels 4 and 5 capture the slowest oscillations.
                acc += dec.details[3].iter().map(|v| v * v).sum::<f64>()
                    + dec.details[4].iter().map(|v| v * v).sum::<f64>();
            }
            acc
        };
        let rest = deep_energy(&EegParams::e1_rest(), &mut r);
        let shifted = deep_energy(&EegParams::e1_shifted(), &mut r);
        assert!(
            shifted > rest,
            "shifted deep energy {shifted} <= rest {rest}"
        );
    }

    #[test]
    fn poisson_of_zero_mean_is_zero() {
        assert_eq!(poisson_draw(0.0, &mut rng()), 0);
    }

    #[test]
    fn poisson_mean_tracks_parameter() {
        let mut r = rng();
        let n = 3000;
        let total: usize = (0..n).map(|_| poisson_draw(2.5, &mut r)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_eeg(&EegParams::e1_rest(), 64, &mut StdRng::seed_from_u64(3));
        let b = generate_eeg(&EegParams::e1_rest(), 64, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
