//! Ablation A1 — cell-level resource reuse (design rule 3, §3.1.3).
//!
//! Rebuilds each case's cell graph with the Std→Var reuse edge disabled and
//! measures what the rule buys: every Std cell degenerates from a lone
//! square root back to a full variance datapath.
//!
//! Run: `cargo run --release -p xpro-bench --bin ablation_reuse [--paper]`

use xpro_bench::{fmt, harness_dataset, harness_pipeline_config, paper_mode, print_table};
use xpro_core::builder::BuildOptions;
use xpro_core::config::SystemConfig;
use xpro_core::generator::Engine;
use xpro_core::instance::XProInstance;
use xpro_core::pipeline::XProPipeline;
use xpro_core::report::EngineComparison;
use xpro_data::CaseId;

fn main() {
    let paper = paper_mode();
    let header: Vec<String> = [
        "case",
        "S energy (uJ)",
        "S energy, no reuse",
        "saving",
        "C life (h)",
        "C life, no reuse",
    ]
    .iter()
    .map(std::string::ToString::to_string)
    .collect();
    let mut rows = Vec::new();
    for case in CaseId::ALL {
        let data = harness_dataset(case, paper);
        let base_cfg = harness_pipeline_config();
        let eval = |reuse: bool| {
            let cfg = base_cfg
                .clone()
                .into_builder()
                .build_options(BuildOptions {
                    cell_reuse: reuse,
                    ..BuildOptions::default()
                })
                .build()
                .expect("valid config");
            let p = XProPipeline::train(&data, &cfg).expect("trains");
            let inst =
                XProInstance::try_new(p.built().clone(), SystemConfig::default(), p.segment_len())
                    .expect("valid instance");
            EngineComparison::evaluate(case.symbol(), &inst).expect("evaluates")
        };
        let with = eval(true);
        let without = eval(false);
        let e_with = with.of(Engine::InSensor).sensor.total_pj();
        let e_without = without.of(Engine::InSensor).sensor.total_pj();
        rows.push(vec![
            case.symbol().to_string(),
            fmt(e_with / 1e6),
            fmt(e_without / 1e6),
            format!("{:.1}%", (1.0 - e_with / e_without) * 100.0),
            fmt(with.of(Engine::CrossEnd).sensor_battery_hours),
            fmt(without.of(Engine::CrossEnd).sensor_battery_hours),
        ]);
    }
    print_table(
        "Ablation A1: Std reuses Var (design rule 3) vs full Std cells",
        &header,
        &rows,
    );
    println!("\nnote: the saving scales with how many Std cells the trained ensembles use.");
}
