//! Deprecated facade over [`xpro_runtime::trace`].
//!
//! The single-event discrete-event simulator grew into the streaming
//! fleet executor of `xpro-runtime`, and its implementation moved there
//! (`xpro_runtime::trace` for the per-event dataflow simulation,
//! `xpro_runtime::Executor` for continuous streams with loss and
//! retransmission). This crate remains as thin wrappers so existing
//! callers keep compiling; new code should depend on `xpro-runtime`
//! directly.

pub use xpro_runtime::trace::{CellRun, End, FrameTransfer, SimTrace};

use xpro_core::instance::XProInstance;
use xpro_core::partition::Partition;

/// Simulates one event through a partitioned instance.
///
/// # Panics
///
/// Panics if the partition size differs from the instance's cell count.
#[deprecated(
    since = "0.2.0",
    note = "use `xpro_runtime::trace::simulate_event` instead"
)]
pub fn simulate_event(instance: &XProInstance, partition: &Partition) -> SimTrace {
    xpro_runtime::trace::simulate_event(instance, partition)
}

/// Simulates a stream of `events` arriving every `period_s` seconds.
///
/// # Panics
///
/// Panics if `period_s` is not positive or `events == 0`.
#[deprecated(
    since = "0.2.0",
    note = "use `xpro_runtime::trace::simulate_stream` or `xpro_runtime::Executor` instead"
)]
pub fn simulate_stream(
    instance: &XProInstance,
    partition: &Partition,
    events: usize,
    period_s: f64,
) -> Vec<SimTrace> {
    xpro_runtime::trace::simulate_stream(instance, partition, events, period_s)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use xpro_core::partition::evaluate;

    // The wrappers must forward to the very same implementation.
    #[test]
    fn wrappers_match_the_runtime_implementation() {
        let inst = xpro_runtime_test_instance();
        let p = Partition::all_aggregator(inst.num_cells());
        let here = simulate_event(&inst, &p);
        let there = xpro_runtime::trace::simulate_event(&inst, &p);
        assert_eq!(here, there);
        assert!((here.sensor_energy_pj - evaluate(&inst, &p).sensor.total_pj()).abs() < 1e-6);
        let stream = simulate_stream(&inst, &p, 2, 1.0);
        assert_eq!(stream.len(), 2);
    }

    fn xpro_runtime_test_instance() -> XProInstance {
        use std::collections::BTreeMap;
        use xpro_core::builder::BuiltGraph;
        use xpro_core::cellgraph::{Cell, CellGraph, PortRef};
        use xpro_core::config::SystemConfig;
        use xpro_core::layout::Domain;
        use xpro_hw::ModuleKind;
        use xpro_signal::stats::FeatureKind;

        let mut graph = CellGraph::new(128);
        let f = graph.add_cell(Cell {
            module: ModuleKind::Feature {
                kind: FeatureKind::Var,
                input_len: 128,
                reuses_var: false,
            },
            domain: Domain::Time,
            output_samples: vec![1],
            inputs: vec![PortRef::RAW],
            label: "var".into(),
        });
        let svm = graph.add_cell(Cell {
            module: ModuleKind::Svm {
                support_vectors: 12,
                dims: 1,
                rbf: true,
            },
            domain: Domain::Time,
            output_samples: vec![1],
            inputs: vec![PortRef::cell(f)],
            label: "svm".into(),
        });
        let fusion = graph.add_cell(Cell {
            module: ModuleKind::ScoreFusion { bases: 1 },
            domain: Domain::Time,
            output_samples: vec![1],
            inputs: vec![PortRef::cell(svm)],
            label: "fusion".into(),
        });
        let built = BuiltGraph {
            graph,
            feature_cells: BTreeMap::from([(0, f)]),
            svm_cells: vec![svm],
            fusion_cell: fusion,
        };
        XProInstance::try_new(built, SystemConfig::default(), 100).expect("valid test instance")
    }
}
