//! A lightweight metrics registry: named counters, gauges and log-bucketed
//! histograms, with no external dependencies.
//!
//! The executor records everything it observes here; [`crate::RunReport`]
//! carries the registry so callers can inspect raw counters next to the
//! digested per-node statistics.

use std::collections::BTreeMap;

/// Geometric bucket growth factor. 2^(1/4) gives four buckets per octave,
/// i.e. ≤ ~9 % quantile error — plenty for latency reporting.
const BUCKET_GROWTH: f64 = 1.189_207_115_002_721;
/// Lower edge of the first bucket (100 ns for second-valued series; the
/// histogram is unit-agnostic, this just anchors the geometric grid).
const BUCKET_FLOOR: f64 = 1e-7;

/// A log-bucketed histogram over non-negative samples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    /// `buckets[i]` counts samples in `[floor * g^(i-1), floor * g^i)`;
    /// bucket 0 holds samples below [`BUCKET_FLOOR`].
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    fn bucket_index(value: f64) -> usize {
        if value < BUCKET_FLOOR {
            return 0;
        }
        ((value / BUCKET_FLOOR).ln() / BUCKET_GROWTH.ln()).floor() as usize + 1
    }

    /// Records one sample. Negative or non-finite samples are clamped to 0.
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        let idx = Self::bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the bucket boundaries:
    /// returns the geometric midpoint of the bucket holding the q-th
    /// sample, clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = if i == 0 {
                    BUCKET_FLOOR / 2.0
                } else {
                    let lo = BUCKET_FLOOR * BUCKET_GROWTH.powi(i as i32 - 1);
                    lo * BUCKET_GROWTH.sqrt()
                };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Named counters, gauges and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to a counter, creating it at zero first if needed.
    ///
    /// The executor calls this per completed segment, so the common path
    /// must not allocate: the name is interned (one `String` allocation)
    /// only the first time it is seen — every later call looks the
    /// existing key up by `&str`.
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to the latest value. Allocates the key only on first
    /// use, like [`MetricsRegistry::inc`].
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        if let Some(slot) = self.gauges.get_mut(name) {
            *slot = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Reads a gauge (`None` when never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records one sample into a histogram, creating it if needed. The
    /// per-observation path allocates no key `String` after the first
    /// sample of a series — this sits on the executor's per-segment hot
    /// path.
    pub fn observe(&mut self, name: &str, value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Reads a histogram (`None` when never observed).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x", 2);
        m.inc("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn gauges_keep_the_latest_value() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.gauge("g"), None);
        m.set_gauge("g", 1.5);
        m.set_gauge("g", -2.0);
        assert_eq!(m.gauge("g"), Some(-2.0));
    }

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1 ms .. 1 s
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Geometric buckets: within one growth factor of the true value.
        assert!((0.4..0.62).contains(&p50), "p50 {p50}");
        assert!((0.85..=1.0).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
        assert!((h.mean() - 0.5005).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_degenerate_input() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        h.record(f64::NAN);
        h.record(-3.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn registry_histograms_are_reachable() {
        let mut m = MetricsRegistry::new();
        m.observe("lat", 0.25);
        m.observe("lat", 0.25);
        let h = m.histogram("lat").expect("recorded");
        assert_eq!(h.count(), 2);
        assert!((h.quantile(0.5) - 0.25).abs() / 0.25 < 0.1);
        assert_eq!(m.histograms().count(), 1);
    }
}
