//! Conventional heuristic partitioners — the baselines the Automatic XPro
//! Generator is implicitly compared against.
//!
//! §5.5: "Such cuts are difficult to search through conventional heuristic
//! algorithms, but can be obtained in the proposed generator that cleverly
//! formulates the search into a graph theory problem." These heuristics make
//! that comparison concrete:
//!
//! * [`greedy_migration`] — classic hardware/software-partitioning style
//!   local search: start from a single-end design and repeatedly move the
//!   single cell whose migration saves the most sensor energy;
//! * [`topological_sweep`] — try every "prefix" cut along the dataflow
//!   order (all cells before position k on the sensor), keep the best.
//!
//! Both respect the delay limit; neither explores the exponential space of
//! general cuts, so the min-cut generator dominates them (asserted in tests
//! and measured by `ablation_heuristics`).

use crate::instance::XProInstance;
use crate::partition::{evaluate, Partition};

/// Greedy single-cell migration from both single-end seeds.
///
/// From each seed (all-sensor and all-aggregator), repeatedly flips the one
/// cell that most reduces sensor energy while keeping delay within
/// `t_limit_s`; stops at a local optimum. Returns the better of the two
/// local optima.
///
/// # Panics
///
/// Panics if `t_limit_s` is not positive.
pub fn greedy_migration(instance: &XProInstance, t_limit_s: f64) -> Partition {
    assert!(t_limit_s > 0.0, "delay limit must be positive");
    let n = instance.num_cells();
    let mut best: Option<(Partition, f64)> = None;
    for seed in [Partition::all_sensor(n), Partition::all_aggregator(n)] {
        let local = greedy_from(instance, seed, t_limit_s);
        let energy = evaluate(instance, &local).sensor.total_pj();
        let feasible = evaluate(instance, &local).delay.total_s() <= t_limit_s * (1.0 + 1e-9);
        if !feasible {
            continue;
        }
        match &best {
            Some((_, e)) if *e <= energy => {}
            _ => best = Some((local, energy)),
        }
    }
    // At least one single-end seed is feasible at the paper's default limit;
    // for tighter limits fall back to the cheaper feasible seed unchanged.
    best.map(|(p, _)| p)
        .unwrap_or_else(|| Partition::all_sensor(n))
}

fn greedy_from(instance: &XProInstance, mut current: Partition, t_limit_s: f64) -> Partition {
    let n = instance.num_cells();
    let mut current_energy = evaluate(instance, &current).sensor.total_pj();
    loop {
        let mut best_move: Option<(usize, f64)> = None;
        for c in 0..n {
            let mut candidate = current.clone();
            candidate.in_sensor[c] = !candidate.in_sensor[c];
            let eval = evaluate(instance, &candidate);
            if eval.delay.total_s() > t_limit_s * (1.0 + 1e-9) {
                continue;
            }
            let energy = eval.sensor.total_pj();
            if energy < current_energy - 1e-9 {
                match best_move {
                    Some((_, e)) if e <= energy => {}
                    _ => best_move = Some((c, energy)),
                }
            }
        }
        match best_move {
            Some((c, energy)) => {
                current.in_sensor[c] = !current.in_sensor[c];
                current_energy = energy;
            }
            None => return current,
        }
    }
}

/// Prefix cuts along the topological (insertion) order: cells `0..k` on the
/// sensor, the rest on the aggregator, for every `k`. Returns the feasible
/// prefix with minimum sensor energy.
///
/// # Panics
///
/// Panics if `t_limit_s` is not positive.
pub fn topological_sweep(instance: &XProInstance, t_limit_s: f64) -> Partition {
    assert!(t_limit_s > 0.0, "delay limit must be positive");
    let n = instance.num_cells();
    let mut best: Option<(Partition, f64)> = None;
    for k in 0..=n {
        let partition = Partition {
            in_sensor: (0..n).map(|i| i < k).collect(),
        };
        let eval = evaluate(instance, &partition);
        if eval.delay.total_s() > t_limit_s * (1.0 + 1e-9) {
            continue;
        }
        let energy = eval.sensor.total_pj();
        match &best {
            Some((_, e)) if *e <= energy => {}
            _ => best = Some((partition, energy)),
        }
    }
    best.map(|(p, _)| p)
        .unwrap_or_else(|| Partition::all_sensor(n))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;
    use crate::generator::XProGenerator;
    use crate::testutil::tiny_instance;

    #[test]
    fn generator_never_loses_to_the_heuristics() {
        for seed in 0..6 {
            let inst = tiny_instance(seed);
            let generator = XProGenerator::new(&inst);
            let limit = generator.default_delay_limit();
            let cut = evaluate(&inst, &generator.generate().unwrap())
                .sensor
                .total_pj();
            let greedy = evaluate(&inst, &greedy_migration(&inst, limit))
                .sensor
                .total_pj();
            let sweep = evaluate(&inst, &topological_sweep(&inst, limit))
                .sensor
                .total_pj();
            assert!(
                cut <= greedy + 1e-6,
                "seed {seed}: cut {cut} > greedy {greedy}"
            );
            assert!(
                cut <= sweep + 1e-6,
                "seed {seed}: cut {cut} > sweep {sweep}"
            );
        }
    }

    #[test]
    fn heuristics_respect_the_delay_limit() {
        let inst = tiny_instance(2);
        let generator = XProGenerator::new(&inst);
        let limit = generator.default_delay_limit();
        for p in [
            greedy_migration(&inst, limit),
            topological_sweep(&inst, limit),
        ] {
            assert!(evaluate(&inst, &p).delay.total_s() <= limit * (1.0 + 1e-9));
        }
    }

    #[test]
    fn greedy_improves_on_its_seeds() {
        let inst = tiny_instance(4);
        let generator = XProGenerator::new(&inst);
        let limit = generator.default_delay_limit();
        let greedy = evaluate(&inst, &greedy_migration(&inst, limit))
            .sensor
            .total_pj();
        let n = inst.num_cells();
        let s = evaluate(&inst, &Partition::all_sensor(n)).sensor.total_pj();
        let a = evaluate(&inst, &Partition::all_aggregator(n))
            .sensor
            .total_pj();
        assert!(greedy <= s.min(a) + 1e-6);
    }
}
