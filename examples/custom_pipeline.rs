//! Building an XPro instance by hand, without the trained-classifier front
//! door — for users who bring their own analytic pipeline.
//!
//! The paper's formulation is agnostic to what the functional cells compute:
//! anything expressible as a dataflow graph of priced cells can be
//! partitioned. This example rebuilds the worked example of the paper's
//! Fig. 6 (three features + one classifier) directly on the public cell-
//! graph API, prices it under a custom radio, and runs the generator.
//!
//! Run: `cargo run --release --example custom_pipeline`

use std::collections::BTreeMap;
use xpro::core::builder::BuiltGraph;
use xpro::core::{Cell, CellGraph, Domain, PortRef};
use xpro::hw::ModuleKind;
use xpro::prelude::*;
use xpro::signal::FeatureKind;
use xpro::wireless::TransceiverModel;

fn main() -> Result<(), XProError> {
    // A 128-sample segment feeding three features and one classifier.
    let mut graph = CellGraph::new(128);
    let feature = |kind: FeatureKind| Cell {
        module: ModuleKind::Feature {
            kind,
            input_len: 128,
            reuses_var: false,
        },
        domain: Domain::Time,
        output_samples: vec![1],
        inputs: vec![PortRef::RAW],
        label: format!("{kind}@time"),
    };
    let f1 = graph.add_cell(feature(FeatureKind::Mean));
    let f2 = graph.add_cell(feature(FeatureKind::Skew));
    let f3 = graph.add_cell(feature(FeatureKind::Kurt));
    let svm = graph.add_cell(Cell {
        module: ModuleKind::Svm {
            support_vectors: 30,
            dims: 3,
            rbf: true,
        },
        domain: Domain::Time,
        output_samples: vec![1],
        inputs: vec![PortRef::cell(f1), PortRef::cell(f2), PortRef::cell(f3)],
        label: "classifier".into(),
    });

    let built = BuiltGraph {
        graph,
        feature_cells: BTreeMap::from([(0, f1), (1, f2), (2, f3)]),
        svm_cells: vec![svm],
        fusion_cell: svm, // the classifier's output is the result
    };

    // Sweep a custom radio from very cheap to very expensive and watch the
    // optimal cut flip from "ship raw data" to "compute everything locally".
    println!(
        "{:>16} {:>16} {:>14} {:>12}",
        "radio (nJ/bit)", "cells in-sensor", "energy (uJ)", "delay (ms)"
    );
    for tx_nj in [0.05, 0.2, 0.8, 3.2, 12.8] {
        let radio = TransceiverModel::new(format!("custom {tx_nj}"), tx_nj, tx_nj * 1.1, 2.0e6);
        let config = SystemConfig::builder().radio(radio).build()?;
        let instance = XProInstance::try_new(built.clone(), config, 128)?;
        let generator = XProGenerator::new(&instance);
        let cut = generator.partition_for(Engine::CrossEnd)?;
        let eval = generator.evaluate_engine(Engine::CrossEnd)?;
        println!(
            "{:>16} {:>11}/{:<4} {:>14.3} {:>12.3}",
            format!("{tx_nj}"),
            cut.sensor_count(),
            instance.num_cells(),
            eval.sensor.total_pj() / 1e6,
            eval.delay.total_s() * 1e3
        );
    }
    println!(
        "\nas the radio gets more expensive the generator pushes cells into the sensor,\n\
         reproducing the in-aggregator → cross-end → in-sensor continuum of the paper."
    );
    Ok(())
}
