//! Criterion bench for the per-event software path: feature extraction
//! (time + 5-level DWT), monolithic classification, and partitioned
//! cross-end execution. These are the aggregator-side costs the gem5/McPAT
//! substitute prices (DESIGN.md §3).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xpro_core::config::SystemConfig;
use xpro_core::generator::{Engine, XProGenerator};
use xpro_core::instance::XProInstance;
use xpro_core::pipeline::{extract_features, PipelineConfig, XProPipeline};
use xpro_data::{generate_case_sized, CaseId};
use xpro_ml::SubspaceConfig;
use xpro_signal::dwt::{dwt_multilevel, Wavelet};
use xpro_signal::stats::all_features_f64;

fn bench_pipeline(c: &mut Criterion) {
    let data = generate_case_sized(CaseId::E1, 160, 3);
    let cfg = PipelineConfig::builder()
        .subspace(SubspaceConfig {
            candidates: 12,
            keep_fraction: 0.3,
            min_keep: 4,
            folds: 2,
            ..SubspaceConfig::default()
        })
        .build()
        .expect("valid config");
    let pipeline = XProPipeline::train(&data, &cfg).expect("trains");
    let instance = XProInstance::try_new(
        pipeline.built().clone(),
        SystemConfig::default(),
        pipeline.segment_len(),
    )
    .expect("valid instance");
    let cut = XProGenerator::new(&instance)
        .partition_for(Engine::CrossEnd)
        .expect("partition");
    let segment = data.segments[0].clone();

    c.bench_function("dwt_5level_128", |b| {
        b.iter(|| dwt_multilevel(black_box(&segment), 5, Wavelet::Haar));
    });
    c.bench_function("features_time_domain", |b| {
        b.iter(|| all_features_f64(black_box(&segment)));
    });
    c.bench_function("extract_features_56", |b| {
        b.iter(|| extract_features(black_box(&segment), Wavelet::Haar));
    });
    c.bench_function("classify_monolithic", |b| {
        b.iter(|| pipeline.classify(black_box(&segment)));
    });
    c.bench_function("classify_partitioned_cross_end", |b| {
        b.iter(|| pipeline.classify_partitioned(black_box(&segment), &cut));
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
