//! Shared harness for regenerating every table and figure of the XPro paper.
//!
//! Each `src/bin/*.rs` binary reproduces one artifact (see `DESIGN.md` §5
//! for the experiment index); this library holds the common workload setup:
//! training the six Table-1 cases, pricing instances under a system
//! configuration and formatting the paper's normalized comparisons.
//!
//! Training uses a scaled-down random-subspace procedure by default
//! ([`harness_pipeline_config`]) so a full figure regenerates in seconds;
//! pass `--paper` to the binaries to use the paper's full §4.4 procedure.

use xpro_core::config::SystemConfig;
use xpro_core::instance::XProInstance;
use xpro_core::pipeline::{PipelineConfig, XProPipeline};
use xpro_data::{generate_case_sized, CaseId, Dataset};
use xpro_ml::SubspaceConfig;

/// Segments per case used by the quick harness (the full Table-1 counts are
/// used with `--paper`).
pub const QUICK_SEGMENTS: usize = 240;

/// Master seed for harness workloads.
pub const HARNESS_SEED: u64 = 20170624; // ISCA'17 opening day

/// The scaled-down training configuration used by default in the harness.
pub fn harness_pipeline_config() -> PipelineConfig {
    PipelineConfig::builder()
        .subspace(SubspaceConfig {
            candidates: 24,
            features_per_base: 12,
            keep_fraction: 0.25,
            min_keep: 4,
            folds: 3,
            ..SubspaceConfig::default()
        })
        .build()
        .expect("harness config is valid")
}

/// The paper's full §4.4 training configuration.
pub fn paper_pipeline_config() -> PipelineConfig {
    PipelineConfig::builder()
        .subspace(SubspaceConfig::paper())
        .build()
        .expect("paper config is valid")
}

/// Whether `--paper` was passed on the command line.
pub fn paper_mode() -> bool {
    std::env::args().any(|a| a == "--paper")
}

/// Generates a case's dataset at harness or paper scale.
pub fn harness_dataset(case: CaseId, paper: bool) -> Dataset {
    if paper {
        xpro_data::generate_case(case, HARNESS_SEED)
    } else {
        generate_case_sized(case, QUICK_SEGMENTS, HARNESS_SEED)
    }
}

/// A trained case ready for instancing under different system configs.
#[derive(Debug)]
pub struct TrainedCase {
    /// The Table-1 case.
    pub case: CaseId,
    /// The trained pipeline.
    pub pipeline: XProPipeline,
}

impl TrainedCase {
    /// Prices this case's cell graph under a system configuration.
    pub fn instance(&self, config: SystemConfig) -> XProInstance {
        XProInstance::try_new(
            self.pipeline.built().clone(),
            config,
            self.pipeline.segment_len(),
        )
        .expect("trained case prices under any valid system config")
    }
}

/// Trains one case with the harness (or paper) procedure.
///
/// # Panics
///
/// Panics if training fails — harness datasets are always trainable.
pub fn train_case(case: CaseId, paper: bool) -> TrainedCase {
    let data = harness_dataset(case, paper);
    let cfg = if paper {
        paper_pipeline_config()
    } else {
        harness_pipeline_config()
    };
    let pipeline = XProPipeline::train(&data, &cfg).expect("harness case trains");
    TrainedCase { case, pipeline }
}

/// Trains all six Table-1 cases.
pub fn train_all_cases(paper: bool) -> Vec<TrainedCase> {
    CaseId::ALL.iter().map(|&c| train_case(c, paper)).collect()
}

/// Prints an aligned table: header row then value rows.
///
/// When `--csv <dir>` is passed on the command line, the table is also
/// written to `<dir>/<slug-of-title>.csv` for plotting.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    for row in rows {
        println!("{}", fmt_row(row));
    }
    if let Some(dir) = csv_dir() {
        if let Err(e) = write_csv(&dir, title, header, rows) {
            eprintln!("warning: failed to write CSV for '{title}': {e}");
        }
    }
}

/// Directory given via `--csv <dir>`, if any.
fn csv_dir() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--csv" {
            return args.next().map(std::path::PathBuf::from);
        }
    }
    None
}

fn write_csv(
    dir: &std::path::Path,
    title: &str,
    header: &[String],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let slug: String = title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_");
    let path = dir.join(format!("{slug}.csv"));
    let escape = |cell: &String| -> String {
        if cell.contains([',', '"', '\n']) {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.clone()
        }
    };
    let mut out = String::new();
    out.push_str(&header.iter().map(escape).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(escape).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Formats a float with adaptive precision for table cells.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Geometric mean of a slice (used for "average X× improvement" claims).
///
/// # Panics
///
/// Panics if `values` is empty or any value is non-positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    assert!(values.iter().all(|&v| v > 0.0), "values must be positive");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_constants() {
        assert!((geometric_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fmt_adapts_precision() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.5), "1234");
        assert_eq!(fmt(5.67891), "5.68");
        assert_eq!(fmt(0.1234), "0.123");
    }

    #[test]
    fn harness_dataset_sizes() {
        let d = harness_dataset(CaseId::C1, false);
        assert_eq!(d.len(), QUICK_SEGMENTS);
        assert_eq!(d.segment_len, 82);
    }

    #[test]
    fn one_case_trains_and_instances() {
        let t = train_case(CaseId::E2, false);
        assert!(t.pipeline.test_accuracy() > 0.55);
        let inst = t.instance(SystemConfig::default());
        assert!(inst.num_cells() > 5);
    }
}
