//! Transceiver energy/time models.

use crate::frame::Frame;

/// An asymmetric-energy wireless transceiver model.
///
/// Energy per bit differs between transmission and reception, matching the
/// three medical-implant radios of the paper's §4.2.
///
/// # Examples
///
/// ```
/// use xpro_wireless::TransceiverModel;
///
/// let radio = TransceiverModel::model2();
/// // One 32-bit sample plus the 8-bit protocol header.
/// let e = radio.tx_energy_pj(40);
/// assert!((e - 40.0 * 1530.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TransceiverModel {
    name: String,
    tx_nj_per_bit: f64,
    rx_nj_per_bit: f64,
    data_rate_bps: f64,
}

impl TransceiverModel {
    /// Creates a custom transceiver model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn new(
        name: impl Into<String>,
        tx_nj_per_bit: f64,
        rx_nj_per_bit: f64,
        data_rate_bps: f64,
    ) -> Self {
        assert!(tx_nj_per_bit > 0.0, "tx energy must be positive");
        assert!(rx_nj_per_bit > 0.0, "rx energy must be positive");
        assert!(data_rate_bps > 0.0, "data rate must be positive");
        TransceiverModel {
            name: name.into(),
            tx_nj_per_bit,
            rx_nj_per_bit,
            data_rate_bps,
        }
    }

    /// Paper Model 1: "high-energy" MSK/OOK pair (2.9 / 3.3 nJ/bit).
    pub fn model1() -> Self {
        TransceiverModel::new("Model 1 (MSK/OOK 2.9/3.3)", 2.9, 3.3, 2.0e6)
    }

    /// Paper Model 2: "medium-energy" current-reuse OOK (1.53 / 1.71 nJ/bit
    /// at 2 Mbps) — the default radio from §5.2 onward.
    pub fn model2() -> Self {
        TransceiverModel::new("Model 2 (OOK 1.53/1.71)", 1.53, 1.71, 2.0e6)
    }

    /// Paper Model 3: "low-energy" MedRadio OOK (0.42 / 0.295 nJ/bit).
    pub fn model3() -> Self {
        TransceiverModel::new("Model 3 (OOK 0.42/0.295)", 0.42, 0.295, 2.0e6)
    }

    /// The three paper radios in §4.2 order.
    pub fn paper_models() -> [TransceiverModel; 3] {
        [Self::model1(), Self::model2(), Self::model3()]
    }

    /// Bluetooth Low Energy, for the §4.2 counter-argument only.
    ///
    /// The paper deliberately excludes BLE: measured BLE stacks land around
    /// tens of nJ/bit effective (connection events, advertising and protocol
    /// overhead included) — "orders of magnitude higher than the required
    /// µW level sensor hardware design". This model (50 nJ/bit at 1 Mbps
    /// application throughput) exists so the exclusion can be demonstrated
    /// quantitatively; see the `ablation_ble` bench.
    pub fn ble() -> Self {
        TransceiverModel::new("BLE (effective 50nJ/bit)", 50.0, 50.0, 1.0e6)
    }

    /// Human-readable model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Transmission energy in nJ per bit.
    pub fn tx_nj_per_bit(&self) -> f64 {
        self.tx_nj_per_bit
    }

    /// Reception energy in nJ per bit.
    pub fn rx_nj_per_bit(&self) -> f64 {
        self.rx_nj_per_bit
    }

    /// Link data rate in bits per second.
    pub fn data_rate_bps(&self) -> f64 {
        self.data_rate_bps
    }

    /// This radio as a planner sees it through a lossy channel with the
    /// given attempt inflation `factor` (observed attempts per planned
    /// frame): per-bit energies scale up by the factor and the effective
    /// data rate scales down by it, since every delivered bit occupies the
    /// channel `factor` times. `factor = 1` returns an identical model.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and ≥ 1.
    pub fn derated(&self, factor: f64) -> TransceiverModel {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "derating factor must be finite and >= 1, got {factor}"
        );
        TransceiverModel {
            name: format!("{} (derated x{factor:.2})", self.name),
            tx_nj_per_bit: self.tx_nj_per_bit * factor,
            rx_nj_per_bit: self.rx_nj_per_bit * factor,
            data_rate_bps: self.data_rate_bps / factor,
        }
    }

    /// Energy to transmit `bits` bits, in picojoules.
    pub fn tx_energy_pj(&self, bits: u64) -> f64 {
        bits as f64 * self.tx_nj_per_bit * 1000.0
    }

    /// Energy to receive `bits` bits, in picojoules.
    pub fn rx_energy_pj(&self, bits: u64) -> f64 {
        bits as f64 * self.rx_nj_per_bit * 1000.0
    }

    /// Air time of `bits` bits in seconds.
    pub fn airtime_s(&self, bits: u64) -> f64 {
        bits as f64 / self.data_rate_bps
    }

    /// Energy to transmit one framed payload (header included), in pJ.
    pub fn tx_frame_pj(&self, frame: Frame) -> f64 {
        self.tx_energy_pj(frame.total_bits())
    }

    /// Energy to receive one framed payload (header included), in pJ.
    pub fn rx_frame_pj(&self, frame: Frame) -> f64 {
        self.rx_energy_pj(frame.total_bits())
    }

    /// Air time of one framed payload in seconds.
    pub fn frame_airtime_s(&self, frame: Frame) -> f64 {
        self.airtime_s(frame.total_bits())
    }

    /// Worst-case channel occupancy of one frame under a bounded-retry
    /// policy: `attempts` full transmissions of the same frame, in
    /// seconds. Static timing analyzers use this as the per-frame demand
    /// envelope; backoff gaps between attempts are idle channel time and
    /// are accounted separately.
    pub fn worst_case_airtime_s(&self, frame: Frame, attempts: u32) -> f64 {
        f64::from(attempts) * self.frame_airtime_s(frame)
    }

    /// Worst-case sensor-side energy to deliver one frame under a
    /// bounded-retry policy, in pJ: the radio spends transmit energy on
    /// every attempt whether or not the frame survives the channel.
    pub fn worst_case_tx_pj(&self, frame: Frame, attempts: u32) -> f64 {
        f64::from(attempts) * self.tx_frame_pj(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_match_section_4_2() {
        let [m1, m2, m3] = TransceiverModel::paper_models();
        assert_eq!((m1.tx_nj_per_bit(), m1.rx_nj_per_bit()), (2.9, 3.3));
        assert_eq!((m2.tx_nj_per_bit(), m2.rx_nj_per_bit()), (1.53, 1.71));
        assert_eq!((m3.tx_nj_per_bit(), m3.rx_nj_per_bit()), (0.42, 0.295));
        for m in [&m1, &m2, &m3] {
            assert_eq!(m.data_rate_bps(), 2.0e6);
        }
    }

    #[test]
    fn energies_scale_linearly_with_bits() {
        let m = TransceiverModel::model2();
        assert_eq!(m.tx_energy_pj(0), 0.0);
        assert!((m.tx_energy_pj(100) - 153_000.0).abs() < 1e-9);
        assert!((m.rx_energy_pj(100) - 171_000.0).abs() < 1e-9);
    }

    #[test]
    fn airtime_follows_data_rate() {
        let m = TransceiverModel::model2();
        assert!((m.airtime_s(2_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frame_energy_includes_header() {
        let m = TransceiverModel::model3();
        let f = Frame::for_samples(1, 32);
        assert!((m.tx_frame_pj(f) - 40.0 * 420.0).abs() < 1e-9);
    }

    #[test]
    fn worst_case_queries_scale_with_attempts() {
        let m = TransceiverModel::model2();
        let f = Frame::for_samples(4, 32);
        assert_eq!(m.worst_case_airtime_s(f, 0), 0.0);
        assert!((m.worst_case_airtime_s(f, 1) - m.frame_airtime_s(f)).abs() < 1e-15);
        assert!((m.worst_case_airtime_s(f, 4) - 4.0 * m.frame_airtime_s(f)).abs() < 1e-15);
        assert!((m.worst_case_tx_pj(f, 4) - 4.0 * m.tx_frame_pj(f)).abs() < 1e-9);
    }

    #[test]
    fn models_are_ordered_by_energy() {
        let [m1, m2, m3] = TransceiverModel::paper_models();
        assert!(m1.tx_energy_pj(100) > m2.tx_energy_pj(100));
        assert!(m2.tx_energy_pj(100) > m3.tx_energy_pj(100));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        TransceiverModel::new("bad", 1.0, 1.0, 0.0);
    }
}
