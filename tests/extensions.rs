//! Integration tests for the §5.7 extensions and auxiliary substrates
//! through the facade crate: multi-classification, multi-node BSNs, the
//! heuristic baselines, area estimation, link non-idealities and the
//! transient battery model all composing with the core engine.

use xpro::core::builder::BuildOptions;
use xpro::core::config::SystemConfig;
use xpro::core::generator::Engine;
use xpro::core::heuristics::{greedy_migration, topological_sweep};
use xpro::core::instance::XProInstance;
use xpro::core::multiclass::MulticlassPipeline;
use xpro::core::multinode::BsnSystem;
use xpro::core::partition::evaluate;
use xpro::core::pipeline::{PipelineConfig, XProPipeline};
use xpro::core::XProGenerator;
use xpro::data::grasps::generate_grasps;
use xpro::data::{generate_case_sized, CaseId};
use xpro::ml::SubspaceConfig;

fn subspace() -> SubspaceConfig {
    SubspaceConfig {
        candidates: 10,
        keep_fraction: 0.3,
        min_keep: 3,
        folds: 2,
        ..SubspaceConfig::default()
    }
}

fn binary_instance(case: CaseId, seed: u64) -> XProInstance {
    let data = generate_case_sized(case, 90, seed);
    let cfg = PipelineConfig::builder()
        .subspace(subspace())
        .seed(seed)
        .build()
        .expect("valid config");
    let p = XProPipeline::train(&data, &cfg).expect("trains");
    let len = p.segment_len();
    XProInstance::try_new(p.into_built(), SystemConfig::default(), len).expect("valid instance")
}

#[test]
fn multiclass_pipeline_flows_through_the_generator() {
    let data = generate_grasps(160, 9);
    let p = MulticlassPipeline::train(&data, &subspace(), &BuildOptions::default(), 9)
        .expect("multi-class trains");
    let len = p.segment_len();
    let inst = XProInstance::try_new(p.into_built(), SystemConfig::default(), len)
        .expect("valid instance");
    let generator = XProGenerator::new(&inst);
    let c = generator
        .evaluate_engine(Engine::CrossEnd)
        .expect("evaluates");
    let limit = generator.default_delay_limit();
    assert!(c.delay.total_s() <= limit * (1.0 + 1e-9));
    assert!(c.sensor.total_pj() > 0.0);
}

#[test]
fn mixed_bsn_prefers_cross_end() {
    let mut bsn = BsnSystem::new();
    bsn.add_node(binary_instance(CaseId::C1, 1))
        .add_node(binary_instance(CaseId::E1, 2));
    let cross = bsn.evaluate(Engine::CrossEnd).expect("evaluates");
    let agg = bsn.evaluate(Engine::InAggregator).expect("evaluates");
    assert!(cross.weakest_sensor_hours() > agg.weakest_sensor_hours());
    assert!(cross.channel_utilization < agg.channel_utilization);
    assert!(cross.aggregator_battery_hours > agg.aggregator_battery_hours);
}

#[test]
fn heuristic_baselines_never_beat_the_generator_on_trained_graphs() {
    let inst = binary_instance(CaseId::M2, 3);
    let generator = XProGenerator::new(&inst);
    let limit = generator.default_delay_limit();
    let cut = evaluate(&inst, &generator.generate().expect("partition"))
        .sensor
        .total_pj();
    for heuristic in [
        greedy_migration(&inst, limit),
        topological_sweep(&inst, limit),
    ] {
        let e = evaluate(&inst, &heuristic).sensor.total_pj();
        assert!(cut <= e + 1e-6, "generator {cut} beaten by heuristic {e}");
    }
}

#[test]
fn area_model_composes_with_trained_instances() {
    use xpro::hw::{cell_area_ge, total_area_ge};
    let inst = binary_instance(CaseId::E2, 4);
    let cells = inst.built().graph.cells();
    let total = total_area_ge(cells.iter().map(|c| (&c.module, xpro::hw::AluMode::Serial)));
    let max_single = cells
        .iter()
        .map(|c| cell_area_ge(&c.module, xpro::hw::AluMode::Serial))
        .fold(0.0f64, f64::max);
    assert!(total > max_single);
    assert!((1.0e4..5.0e6).contains(&total), "engine area {total} GE");
}

#[test]
fn noisy_link_raises_but_does_not_reorder_costs() {
    use xpro::wireless::{Link, LinkConfig, TransceiverModel};
    let clean = Link::new(TransceiverModel::model2(), LinkConfig::ideal());
    let noisy = Link::new(
        TransceiverModel::model2(),
        LinkConfig {
            mtu_payload_bits: 2048,
            bit_error_rate: 1e-5,
        },
    );
    // Raw upload vs feature upload: the cross-end advantage survives link
    // non-idealities.
    let raw_bits = 128 * 32;
    let feature_bits = 36 * 32;
    assert!(noisy.tx_payload_pj(raw_bits) > clean.tx_payload_pj(raw_bits));
    assert!(noisy.tx_payload_pj(feature_bits) < noisy.tx_payload_pj(raw_bits) / 2.0);
}

#[test]
fn transient_battery_survives_cross_end_duty_cycle() {
    use xpro::battery::{TransientBattery, TransientConfig};
    // A cross-end event draws a ~3 µJ burst; at 3.7 V that's a sub-ms
    // ~5 mA pulse every ~60 ms. Terminal voltage must stay above cutoff
    // through a long burst train on a fresh cell.
    let mut cell = TransientBattery::new(TransientConfig::sensor_40mah());
    for _ in 0..1000 {
        cell.step(0.005, 0.5e-3); // burst
        cell.step(0.0, 60e-3); // sleep
    }
    assert!(
        cell.terminal_v(0.005) > 3.5,
        "sagged to {}",
        cell.terminal_v(0.005)
    );
    assert!(cell.soc() > 0.99);
}

#[test]
fn cell_unit_state_machine_matches_instance_costs() {
    use xpro::hw::{CellState, CellUnit};
    let inst = binary_instance(CaseId::C2, 5);
    // Drive the Fig.-3 state machine of the first cell through one event.
    let cost = inst.sensor_cost(0);
    let inputs = inst.built().graph.cells()[0].inputs.len();
    let mut unit = CellUnit::new(inputs, cost);
    for i in 0..inputs {
        unit.offer_input(i);
    }
    assert!(matches!(unit.state(), CellState::Working { .. }));
    let mut cycles = 0u64;
    while !unit.tick() {
        cycles += 1;
    }
    assert_eq!(cycles + 1, cost.cycles);
    assert_eq!(unit.energy_pj(), cost.energy_pj);
}
