//! Single-event dataflow simulation of a partitioned engine (absorbed from
//! the retired `xpro-sim` crate).
//!
//! The analytic evaluator in `xpro-core` prices a partition with a
//! *serialized* delay model (front-end + wireless + back-end sums — the
//! stacked bars of the paper's Fig. 10). This module executes the same
//! partition as a discrete-event simulation that honours the architecture's
//! actual concurrency:
//!
//! * in-sensor functional cells are independent asynchronous
//!   micro-computing units (paper Fig. 3) — any cell fires as soon as all
//!   of its inputs are available on its end, concurrently with its peers;
//! * the wireless link is a single half-duplex channel transferring one
//!   frame at a time, FIFO;
//! * the aggregator CPU executes its cells one at a time from a ready
//!   queue (software, single core).
//!
//! The simulated *energy* matches the analytic evaluator exactly (same cell
//! costs, same per-port frames — asserted by tests); the simulated
//! *makespan* is a lower bound on the serialized delay and quantifies how
//! much overlap the dataflow execution recovers. [`simulate_stream`] chains
//! events to measure steady-state throughput and channel utilization. For
//! fleet-scale streaming with loss, retries and batching, use
//! [`crate::Executor`].

use std::collections::BTreeMap;
use xpro_core::instance::XProInstance;
use xpro_core::layout::BITS_PER_SAMPLE;
use xpro_core::partition::Partition;
use xpro_wireless::Frame;

/// Where a piece of work runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum End {
    /// The wearable sensor node.
    Sensor,
    /// The data aggregator.
    Aggregator,
}

impl std::fmt::Display for End {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            End::Sensor => "sensor",
            End::Aggregator => "aggregator",
        })
    }
}

/// One cell execution in the trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellRun {
    /// Cell id in the instance's graph.
    pub cell: usize,
    /// Which end executed it.
    pub end: End,
    /// Start time (seconds from event arrival).
    pub start_s: f64,
    /// Finish time.
    pub finish_s: f64,
}

/// One wireless frame in the trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrameTransfer {
    /// Producing port's cell (`None` = the raw segment).
    pub producer: Option<usize>,
    /// Direction of travel.
    pub from: End,
    /// Payload + header bits.
    pub bits: u64,
    /// Channel occupancy start.
    pub start_s: f64,
    /// Channel occupancy end.
    pub finish_s: f64,
}

/// The full trace of one simulated event.
#[derive(Clone, Debug, PartialEq)]
pub struct SimTrace {
    /// Every cell execution, in start order.
    pub runs: Vec<CellRun>,
    /// Every wireless frame, in channel order.
    pub frames: Vec<FrameTransfer>,
    /// Time at which the classification result is available at the
    /// aggregator.
    pub makespan_s: f64,
    /// Sensor energy in pJ (compute + radio), matching the analytic model.
    pub sensor_energy_pj: f64,
}

impl SimTrace {
    /// Total time the shared channel was busy.
    pub fn channel_busy_s(&self) -> f64 {
        self.frames.iter().map(|f| f.finish_s - f.start_s).sum()
    }

    /// Critical-path overlap factor: serialized work divided by makespan
    /// (≥ 1; higher means the dataflow execution recovered more
    /// parallelism).
    pub fn overlap_factor(&self) -> f64 {
        let serial: f64 = self
            .runs
            .iter()
            .map(|r| r.finish_s - r.start_s)
            .sum::<f64>()
            + self.channel_busy_s();
        serial / self.makespan_s.max(f64::MIN_POSITIVE)
    }
}

/// Simulates one event through a partitioned instance.
///
/// # Panics
///
/// Panics if the partition size differs from the instance's cell count.
pub fn simulate_event(instance: &XProInstance, partition: &Partition) -> SimTrace {
    simulate_event_at(instance, partition, 0.0, &mut 0.0)
}

/// Simulates a stream of `events` arriving every `period_s` seconds and
/// returns the per-event traces. The shared channel state persists across
/// events, so queueing effects appear when the channel saturates.
///
/// # Panics
///
/// Panics if `period_s` is not positive or `events == 0`.
pub fn simulate_stream(
    instance: &XProInstance,
    partition: &Partition,
    events: usize,
    period_s: f64,
) -> Vec<SimTrace> {
    assert!(period_s > 0.0, "period must be positive");
    assert!(events > 0, "need at least one event");
    let mut channel_free = 0.0f64;
    (0..events)
        .map(|i| {
            let arrival = i as f64 * period_s;
            simulate_event_at(instance, partition, arrival, &mut channel_free)
        })
        .collect()
}

fn simulate_event_at(
    instance: &XProInstance,
    partition: &Partition,
    arrival_s: f64,
    channel_free: &mut f64,
) -> SimTrace {
    assert_eq!(
        partition.in_sensor.len(),
        instance.num_cells(),
        "partition size mismatch"
    );
    let graph = &instance.built().graph;
    let radio = &instance.config().radio;
    let n = instance.num_cells();

    let end_of = |cell: usize| -> End {
        if partition.in_sensor[cell] {
            End::Sensor
        } else {
            End::Aggregator
        }
    };

    // Data availability per (port, end). Ports are keyed by (producer, port).
    let mut available: BTreeMap<(Option<usize>, usize, End), f64> = BTreeMap::new();
    available.insert((None, 0, End::Sensor), arrival_s);

    let mut runs: Vec<CellRun> = Vec::with_capacity(n);
    let mut frames: Vec<FrameTransfer> = Vec::new();
    let mut sensor_energy_pj = 0.0;
    // The aggregator CPU is a serial resource.
    let mut cpu_free = arrival_s;

    // Ship a port's data to the other end if not already there, returning
    // the availability time at `to`.
    macro_rules! ship {
        ($producer:expr, $port:expr, $samples:expr, $to:expr, $ready:expr) => {{
            let from = match $to {
                End::Sensor => End::Aggregator,
                End::Aggregator => End::Sensor,
            };
            let frame = Frame::for_samples($samples, BITS_PER_SAMPLE);
            let start = $ready.max(*channel_free);
            let finish = start + radio.frame_airtime_s(frame);
            *channel_free = finish;
            frames.push(FrameTransfer {
                producer: $producer,
                from,
                bits: frame.total_bits(),
                start_s: start,
                finish_s: finish,
            });
            match from {
                End::Sensor => sensor_energy_pj += radio.tx_frame_pj(frame),
                End::Aggregator => sensor_energy_pj += radio.rx_frame_pj(frame),
            }
            available.insert(($producer, $port, $to), finish);
            finish
        }};
    }

    // Cells are stored in topological order; process them in order, which is
    // a valid event order because inputs always come from earlier cells.
    for (cid, cell) in graph.cells().iter().enumerate() {
        let end = end_of(cid);
        // Gather input availability, shipping cross-end data on demand.
        let mut ready = arrival_s;
        for input in &cell.inputs {
            let key = (input.producer, input.port, end);
            let t = match available.get(&key) {
                Some(&t) => t,
                None => {
                    // Data exists on the other end; ship it once.
                    let other = match end {
                        End::Sensor => End::Aggregator,
                        End::Aggregator => End::Sensor,
                    };
                    let t_other = *available
                        .get(&(input.producer, input.port, other))
                        .expect("producer ran before consumer");
                    let samples = match input.producer {
                        None => instance.segment_len() as u64,
                        Some(_) => graph.port_samples(*input),
                    };
                    ship!(input.producer, input.port, samples, end, t_other)
                }
            };
            ready = ready.max(t);
        }
        // Execute.
        let (start, finish) = match end {
            End::Sensor => {
                // Asynchronous private unit: starts as soon as data is ready.
                let start = ready;
                let finish = start + instance.sensor_time_s(cid);
                sensor_energy_pj += instance.sensor_cost(cid).energy_pj;
                (start, finish)
            }
            End::Aggregator => {
                // Serial CPU.
                let start = ready.max(cpu_free);
                let finish = start + instance.aggregator_time_s(cid);
                cpu_free = finish;
                (start, finish)
            }
        };
        runs.push(CellRun {
            cell: cid,
            end,
            start_s: start,
            finish_s: finish,
        });
        for port in 0..cell.output_samples.len() {
            available.insert((Some(cid), port, end), finish);
        }
    }

    // Deliver the result to the aggregator.
    let result = graph.result_cell();
    let mut makespan = runs[result].finish_s;
    if end_of(result) == End::Sensor {
        let t = runs[result].finish_s;
        makespan = ship!(Some(result), 0usize, 1u64, End::Aggregator, t);
    }

    SimTrace {
        runs,
        frames,
        makespan_s: makespan - arrival_s,
        sensor_energy_pj,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // tests fail loudly by design

    use super::*;
    use crate::testutil::tiny_instance;
    use xpro_core::generator::{Engine, XProGenerator};
    use xpro_core::partition::evaluate;

    #[test]
    fn simulated_energy_matches_analytic_evaluator() {
        for seed in 0..6 {
            let inst = tiny_instance(seed);
            let generator = XProGenerator::new(&inst);
            for engine in Engine::ALL {
                let p = generator.partition_for(engine).unwrap();
                let analytic = evaluate(&inst, &p).sensor.total_pj();
                let sim = simulate_event(&inst, &p).sensor_energy_pj;
                assert!(
                    (analytic - sim).abs() < 1e-6,
                    "seed {seed}/{engine}: analytic {analytic} vs sim {sim}"
                );
            }
        }
    }

    #[test]
    fn simulated_makespan_never_exceeds_serialized_delay() {
        for seed in 0..6 {
            let inst = tiny_instance(seed);
            let generator = XProGenerator::new(&inst);
            for engine in Engine::ALL {
                let p = generator.partition_for(engine).unwrap();
                let serialized = evaluate(&inst, &p).delay.total_s();
                let sim = simulate_event(&inst, &p).makespan_s;
                assert!(
                    sim <= serialized * (1.0 + 1e-9),
                    "seed {seed}/{engine}: sim {sim} > serialized {serialized}"
                );
            }
        }
    }

    #[test]
    fn in_sensor_features_overlap() {
        // All feature cells read the raw segment, so on the sensor they run
        // concurrently: makespan < serialized sum.
        let inst = tiny_instance(1);
        let p = Partition::all_sensor(inst.num_cells());
        let trace = simulate_event(&inst, &p);
        assert!(
            trace.overlap_factor() > 1.2,
            "overlap {}",
            trace.overlap_factor()
        );
    }

    #[test]
    fn aggregator_cpu_serializes() {
        // On the aggregator, cells share one CPU: runs must not overlap.
        let inst = tiny_instance(2);
        let p = Partition::all_aggregator(inst.num_cells());
        let trace = simulate_event(&inst, &p);
        let mut agg_runs: Vec<_> = trace
            .runs
            .iter()
            .filter(|r| r.end == End::Aggregator)
            .collect();
        agg_runs.sort_by(|a, b| a.start_s.partial_cmp(&b.start_s).unwrap());
        for pair in agg_runs.windows(2) {
            assert!(
                pair[1].start_s >= pair[0].finish_s - 1e-12,
                "CPU overlap: {pair:?}"
            );
        }
    }

    #[test]
    fn stream_queues_on_the_shared_channel() {
        let inst = tiny_instance(3);
        let p = Partition::all_aggregator(inst.num_cells());
        // Period shorter than the raw-upload airtime forces queueing.
        let raw_airtime = simulate_event(&inst, &p).channel_busy_s();
        let traces = simulate_stream(&inst, &p, 5, raw_airtime * 0.5);
        let first = traces.first().unwrap().makespan_s;
        let last = traces.last().unwrap().makespan_s;
        assert!(
            last > first * 1.5,
            "no queueing visible: first {first}, last {last}"
        );
    }

    #[test]
    fn relaxed_stream_reaches_steady_state() {
        let inst = tiny_instance(4);
        let p = Partition::all_sensor(inst.num_cells());
        let traces = simulate_stream(&inst, &p, 4, 1.0);
        let m0 = traces[0].makespan_s;
        for t in &traces {
            assert!((t.makespan_s - m0).abs() < 1e-9, "unstable makespan");
        }
    }

    #[test]
    fn frames_never_overlap_on_the_channel() {
        let inst = tiny_instance(5);
        let generator = XProGenerator::new(&inst);
        let p = generator.partition_for(Engine::CrossEnd).unwrap();
        let trace = simulate_event(&inst, &p);
        let mut frames = trace.frames.clone();
        frames.sort_by(|a, b| a.start_s.partial_cmp(&b.start_s).unwrap());
        for pair in frames.windows(2) {
            assert!(pair[1].start_s >= pair[0].finish_s - 1e-12);
        }
    }
}
