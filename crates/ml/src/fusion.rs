//! Least-squares weighted score fusion.
//!
//! "The random subspace takes weighted voting scheme which is trained by the
//! least square method" (paper §4.4). Each base classifier casts a ±1 vote;
//! the fusion stage combines votes with weights `w` chosen to minimize
//! `‖V·w − y‖²` over the validation samples, where `V` is the vote matrix and
//! `y` the ±1 labels. The fused score is the weighted vote sum; its sign is
//! the ensemble prediction.
//!
//! In the wearable system the Score Fusion module is itself a functional cell
//! (Fig. 2) whose operation count is one multiply-accumulate per base
//! classifier.

use crate::linalg::{least_squares, Matrix};

/// Fitted fusion weights for an ensemble of base classifiers.
#[derive(Clone, Debug, PartialEq)]
pub struct FusionWeights {
    weights: Vec<f64>,
}

impl FusionWeights {
    /// Fits weights by ridge-regularized least squares on a vote matrix.
    ///
    /// `votes[i]` holds the ±1 votes of every base classifier for validation
    /// sample `i`; `labels[i]` is that sample's true ±1 label.
    ///
    /// # Panics
    ///
    /// Panics if `votes` is empty or ragged, or the label count mismatches.
    pub fn fit(votes: &[Vec<f64>], labels: &[f64]) -> Self {
        assert!(!votes.is_empty(), "cannot fit fusion on no votes");
        assert_eq!(votes.len(), labels.len(), "label count mismatch");
        let n_bases = votes[0].len();
        assert!(n_bases > 0, "vote matrix has zero columns");
        let mut data = Vec::with_capacity(votes.len() * n_bases);
        for row in votes {
            assert_eq!(row.len(), n_bases, "ragged vote matrix");
            data.extend_from_slice(row);
        }
        let a = Matrix::from_rows(votes.len(), n_bases, data);
        let weights = least_squares(&a, labels, 1e-6);
        FusionWeights { weights }
    }

    /// Uniform weights (plain majority voting) for `n` bases — the baseline
    /// fusion the least-squares scheme improves on.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "ensemble must have at least one base");
        FusionWeights {
            weights: vec![1.0 / n as f64; n],
        }
    }

    /// Fused score: the weighted vote sum. Positive means class +1.
    ///
    /// # Panics
    ///
    /// Panics if the vote count differs from the number of weights.
    pub fn score(&self, votes: &[f64]) -> f64 {
        assert_eq!(votes.len(), self.weights.len(), "vote count mismatch");
        votes.iter().zip(&self.weights).map(|(&v, &w)| v * w).sum()
    }

    /// Fused prediction: the sign of [`FusionWeights::score`] (ties → +1).
    pub fn predict(&self, votes: &[f64]) -> f64 {
        if self.score(votes) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// The fitted weight vector, one entry per base classifier.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of base classifiers the weights were fitted for.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the weight vector is empty (never true for fitted weights).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_base_gets_dominant_weight() {
        // Base 0 always right, base 1 always wrong, base 2 random-ish.
        let votes = vec![
            vec![1.0, -1.0, 1.0],
            vec![-1.0, 1.0, 1.0],
            vec![1.0, -1.0, -1.0],
            vec![-1.0, 1.0, -1.0],
        ];
        let labels = vec![1.0, -1.0, 1.0, -1.0];
        let w = FusionWeights::fit(&votes, &labels);
        assert!(w.weights()[0] > 0.4, "weights {:?}", w.weights());
        assert!(w.weights()[0] > w.weights()[2].abs());
        // The always-wrong base should get a negative (corrective) weight.
        assert!(w.weights()[1] < 0.0, "weights {:?}", w.weights());
        // Fused predictions are perfect.
        for (v, &y) in votes.iter().zip(&labels) {
            assert_eq!(w.predict(v), y);
        }
    }

    #[test]
    fn uniform_weights_are_majority_vote() {
        let w = FusionWeights::uniform(3);
        assert_eq!(w.predict(&[1.0, 1.0, -1.0]), 1.0);
        assert_eq!(w.predict(&[-1.0, -1.0, 1.0]), -1.0);
    }

    #[test]
    fn score_is_linear_in_votes() {
        let w = FusionWeights::uniform(2);
        assert_eq!(w.score(&[1.0, 1.0]), 1.0);
        assert_eq!(w.score(&[1.0, -1.0]), 0.0);
        assert_eq!(w.predict(&[1.0, -1.0]), 1.0); // tie → +1
    }

    #[test]
    fn fit_is_deterministic() {
        let votes = vec![vec![1.0, 1.0], vec![-1.0, 1.0]];
        let labels = vec![1.0, -1.0];
        assert_eq!(
            FusionWeights::fit(&votes, &labels),
            FusionWeights::fit(&votes, &labels)
        );
    }

    #[test]
    #[should_panic(expected = "no votes")]
    fn fit_rejects_empty() {
        FusionWeights::fit(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "vote count")]
    fn score_rejects_wrong_arity() {
        FusionWeights::uniform(2).score(&[1.0]);
    }
}
