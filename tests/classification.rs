//! Classification-quality integration tests: the generic framework learns
//! all six Table-1 cases well above chance (the paper's implicit accuracy
//! sanity requirement), and the random-subspace machinery behaves as §4.4
//! describes.

use xpro::core::pipeline::{PipelineConfig, XProPipeline};
use xpro::data::{generate_case_sized, CaseId};
use xpro::ml::SubspaceConfig;

fn quick_cfg(seed: u64) -> PipelineConfig {
    PipelineConfig::builder()
        .subspace(SubspaceConfig {
            candidates: 12,
            keep_fraction: 0.25,
            min_keep: 3,
            folds: 2,
            ..SubspaceConfig::default()
        })
        .seed(seed)
        .build()
        .expect("valid config")
}

#[test]
fn all_six_cases_classify_well_above_chance() {
    for case in CaseId::ALL {
        let data = generate_case_sized(case, 120, 31);
        let p = XProPipeline::train(&data, &quick_cfg(31)).expect("trains");
        assert!(
            p.test_accuracy() >= 0.75,
            "{case}: accuracy {}",
            p.test_accuracy()
        );
    }
}

#[test]
fn ensembles_survive_candidate_selection() {
    let data = generate_case_sized(CaseId::E1, 100, 8);
    let p = XProPipeline::train(&data, &quick_cfg(8)).expect("trains");
    let bases = p.model().bases();
    assert!(bases.len() >= 3);
    for base in bases {
        assert_eq!(base.feature_indices.len(), 12); // §4.4: 12 per base
        assert!(
            base.validation_accuracy > 0.5,
            "{}",
            base.validation_accuracy
        );
        assert!(base.svm.num_support_vectors() > 0);
    }
}

#[test]
fn different_modalities_prefer_different_features() {
    // §2.1: ECG is time-domain salient, EEG wavelet-domain — the trained
    // ensembles should not select identical feature subsets.
    let ecg = XProPipeline::train(&generate_case_sized(CaseId::C1, 100, 2), &quick_cfg(2))
        .expect("trains");
    let eeg = XProPipeline::train(&generate_case_sized(CaseId::E1, 100, 2), &quick_cfg(2))
        .expect("trains");
    assert_ne!(ecg.model().used_features(), eeg.model().used_features());
}

#[test]
fn cell_count_tracks_training_not_the_full_feature_set() {
    // §2.2: "the number of functional cells is decided by the feature set
    // and random subspace training" — unused features spawn no cells.
    let data = generate_case_sized(CaseId::M2, 100, 6);
    let p = XProPipeline::train(&data, &quick_cfg(6)).expect("trains");
    let used = p.model().used_features().len();
    assert_eq!(p.built().feature_cells.len(), used);
    assert!(
        used < 56,
        "all 56 features in use — selection had no effect"
    );
}
