//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest 1.x that the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, [`strategy::Strategy`] with `prop_map`, numeric-range and
//! tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! [`arbitrary::any`], and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, acceptable for this repository:
//!
//! * cases are generated from a fixed per-test seed (derived from the test
//!   name), so runs are deterministic and reproducible by construction;
//! * there is no shrinking — a failure reports the case index and message;
//! * `prop_assume!` rejections simply skip the case (no rejection budget).

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors `proptest::prelude::prop`, the module-style strategy entry
    /// point (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Generates deterministic randomized test functions.
///
/// Supports the two shapes the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(a in strategy_a, b in strategy_b) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        continue;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case with a formatted message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&v));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_length(w in prop::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!((2..6).contains(&w.len()));
            prop_assert!(w.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn prop_map_applies(sq in (0u64..100).prop_map(|v| v * v)) {
            let root = (sq as f64).sqrt().round() as u64;
            prop_assert_eq!(root * root, sq);
        }

        #[test]
        fn select_picks_members(v in prop::sample::select(vec![3u32, 5, 7])) {
            prop_assert!([3, 5, 7].contains(&v));
        }

        #[test]
        fn assume_skips_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        proptest! {
            fn always_fails(_v in 0u64..10) {
                prop_assert!(false, "intentional");
            }
        }
        always_fails();
    }
}
